//! Reusable symbolic analysis for the sparse LU, plus caller-owned solve
//! scratch space.
//!
//! The paper's cost model (§3.2) is "factor once, resubstitute 2q-1
//! times" — but across a *design*, structurally identical nets repeat the
//! same elimination pattern thousands of times. [`LuSymbolic`] captures
//! everything value-independent about one factorization (column order,
//! pivot sequence, the L and U fill patterns, and the pivot-tolerance
//! metadata), so a later [`crate::SparseLu::refactor`] can re-run only the
//! numeric sweep. [`SolveScratch`] carries the triangular-solve
//! workspaces so repeated solves allocate nothing after warm-up.

use std::sync::Arc;

use crate::error::NumericError;
use crate::sparse::SparseMatrix;

/// The value-independent half of a sparse LU factorization.
///
/// Recorded once by [`crate::SparseLu::factor`] and shared (via `Arc`)
/// with every subsequent [`crate::SparseLu::refactor`] over a matrix with
/// the same sparsity pattern. Holds:
///
/// * the column elimination order `Q` and pivot-row sequence `P`,
/// * the structural fill patterns of `L` and `U` (the U pattern doubles
///   as the elimination reach of each column, stored in ascending pivot
///   order so the numeric sweep needs no topological sort), and
/// * the pivot threshold used at analysis time.
///
/// The fingerprint of the analysed matrix guards against accidental reuse
/// on a structurally different matrix.
#[derive(Debug)]
pub struct LuSymbolic {
    pub(crate) n: usize,
    /// Column order: `q[k]` is the original column eliminated at step `k`.
    pub(crate) q: Vec<usize>,
    /// `prow[k]` = original row chosen as pivot at step `k`.
    pub(crate) prow: Vec<usize>,
    /// L fill pattern (unit diagonal implicit): original row indices.
    pub(crate) l_ptr: Vec<usize>,
    pub(crate) l_rows: Vec<usize>,
    /// U fill pattern: pivot positions `< k` per column, ascending. This
    /// is exactly the elimination reach of each column, so the numeric
    /// sweep replays updates straight off it.
    pub(crate) u_ptr: Vec<usize>,
    pub(crate) u_pos: Vec<usize>,
    /// [`SparseMatrix::pattern_fingerprint`] of the analysed matrix.
    pub(crate) fingerprint: u64,
    /// Threshold used for diagonal-preference pivoting at analysis time.
    pub(crate) pivot_threshold: f64,
}

impl LuSymbolic {
    /// Dimension of the analysed matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Pattern fingerprint of the analysed matrix (see
    /// [`SparseMatrix::pattern_fingerprint`]).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Structural entries in `L` plus `U` including the unit/pivot
    /// diagonals — the fill this pattern commits any refactorization to.
    pub fn pattern_nnz(&self) -> usize {
        self.l_rows.len() + self.u_pos.len() + self.n
    }

    /// Pivot threshold recorded at analysis time.
    #[inline]
    pub fn pivot_threshold(&self) -> f64 {
        self.pivot_threshold
    }

    /// Column elimination order (`q[k]` = original column at step `k`).
    #[inline]
    pub fn col_order(&self) -> &[usize] {
        &self.q
    }

    /// Pivot-row sequence (`prow[k]` = original row pivotal at step `k`).
    #[inline]
    pub fn pivot_rows(&self) -> &[usize] {
        &self.prow
    }

    /// Checks that `a` has the analysed structure.
    ///
    /// # Errors
    ///
    /// * [`NumericError::NotSquare`] for non-square input.
    /// * [`NumericError::DimensionMismatch`] on a dimension change.
    /// * [`NumericError::PatternMismatch`] when the sparsity pattern
    ///   differs from the analysed one.
    pub fn check_matches(&self, a: &SparseMatrix) -> Result<(), NumericError> {
        if a.rows() != a.cols() {
            return Err(NumericError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if a.rows() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: self.n,
                actual: a.rows(),
            });
        }
        let actual = a.pattern_fingerprint();
        if actual != self.fingerprint {
            return Err(NumericError::PatternMismatch {
                expected: self.fingerprint,
                actual,
            });
        }
        Ok(())
    }
}

/// Convenience alias: symbolic analyses are always shared behind an `Arc`
/// (the batch engine hands one pattern to many worker threads).
pub type SharedSymbolic = Arc<LuSymbolic>;

/// Caller-owned workspaces for triangular solves.
///
/// Threading one of these through repeated [`crate::SparseLu::solve_into`]
/// / [`crate::SparseLu::solve_multi_into`] calls makes the steady-state
/// solve path allocation-free: the buffers are cleared and resized in
/// place, and once warm their capacity is never exceeded for a fixed
/// problem size.
#[derive(Debug, Default)]
pub struct SolveScratch {
    /// Permuted right-hand side(s), mutated by forward substitution.
    pub(crate) w: Vec<f64>,
    /// Intermediate `y = L⁻¹·P·b`, then the back-substitution result.
    pub(crate) y: Vec<f64>,
}

impl SolveScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for `n`-dimensional single-RHS solves, so even
    /// the first solve allocates nothing.
    pub fn with_dim(n: usize) -> Self {
        SolveScratch {
            w: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_lu::SparseLu;

    #[test]
    fn accessors_describe_the_analysis() {
        let a = SparseMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (1, 0, 1.0),
                (1, 1, 5.0),
                (2, 1, 1.0),
                (2, 2, 6.0),
                (0, 2, 1.0),
            ],
        );
        let lu = SparseLu::factor(&a, None).unwrap();
        let sym = lu.symbolic();
        assert_eq!(sym.dim(), 3);
        assert_eq!(sym.col_order(), &[0, 1, 2]);
        assert_eq!(sym.pivot_rows().len(), 3);
        assert_eq!(sym.fingerprint(), a.pattern_fingerprint());
        assert_eq!(sym.pattern_nnz(), lu.factor_nnz());
        assert!(sym.pivot_threshold() > 0.0);
        assert!(sym.check_matches(&a).is_ok());
    }

    #[test]
    fn check_matches_rejects_structural_changes() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]);
        let sym = SparseLu::factor(&a, None).unwrap().symbolic().clone();
        let rect = SparseMatrix::from_triplets(2, 3, &[]);
        assert!(matches!(
            sym.check_matches(&rect),
            Err(NumericError::NotSquare { .. })
        ));
        let bigger = SparseMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        assert!(matches!(
            sym.check_matches(&bigger),
            Err(NumericError::DimensionMismatch { .. })
        ));
        let filled = SparseMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)]);
        assert!(matches!(
            sym.check_matches(&filled),
            Err(NumericError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn scratch_presizing_is_capacity_only() {
        let s = SolveScratch::with_dim(16);
        assert!(s.w.capacity() >= 16 && s.w.is_empty());
        assert!(s.y.capacity() >= 16 && s.y.is_empty());
    }
}
