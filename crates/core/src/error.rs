//! Error type for the AWE core.

use std::error::Error;
use std::fmt;

use awe_mna::MnaError;
use awe_numeric::NumericError;
use awe_treelink::TreeLinkError;

/// Errors from the AWE engine and its reductions.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AweError {
    /// The requested approximation order is zero or would need more
    /// moments than were generated.
    BadOrder {
        /// Requested order.
        order: usize,
    },
    /// The moment matrix of eq. (24) is singular even after frequency
    /// scaling — usually the order exceeds the number of observable poles
    /// at this node. The payload is the largest order that *did* solve.
    MomentMatrixSingular {
        /// Requested order.
        order: usize,
        /// Largest order with a nonsingular moment matrix (0 if none).
        achievable: usize,
    },
    /// The approximation produced a pole in the right half plane and
    /// order escalation was exhausted (§3.3: "these situations are easily
    /// remedied by moving to the higher order necessitated" — until they
    /// aren't).
    Unstable {
        /// Order at which the instability persisted.
        order: usize,
    },
    /// The observed node is ground or unknown to the system.
    BadNode(usize),
    /// MNA-level failure.
    Mna(MnaError),
    /// Tree/link-level failure.
    TreeLink(TreeLinkError),
    /// Numeric failure.
    Numeric(NumericError),
    /// The response is identically zero at this node (nothing to reduce).
    ZeroResponse,
}

impl fmt::Display for AweError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AweError::BadOrder { order } => write!(f, "invalid approximation order {order}"),
            AweError::MomentMatrixSingular { order, achievable } => write!(
                f,
                "moment matrix singular at order {order}; largest solvable order is {achievable}"
            ),
            AweError::Unstable { order } => {
                write!(f, "unstable approximation persisted through order {order}")
            }
            AweError::BadNode(n) => write!(f, "node {n} is not an observable unknown"),
            AweError::Mna(e) => write!(f, "mna failure: {e}"),
            AweError::TreeLink(e) => write!(f, "tree/link failure: {e}"),
            AweError::Numeric(e) => write!(f, "numeric failure: {e}"),
            AweError::ZeroResponse => write!(f, "response at the node is identically zero"),
        }
    }
}

impl Error for AweError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AweError::Mna(e) => Some(e),
            AweError::TreeLink(e) => Some(e),
            AweError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MnaError> for AweError {
    fn from(e: MnaError) -> Self {
        AweError::Mna(e)
    }
}

impl From<TreeLinkError> for AweError {
    fn from(e: TreeLinkError) -> Self {
        AweError::TreeLink(e)
    }
}

impl From<NumericError> for AweError {
    fn from(e: NumericError) -> Self {
        AweError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: AweError = MnaError::NoDcSolution.into();
        assert!(e.to_string().contains("mna failure"));
        let e2: AweError = NumericError::Singular { pivot: 1 }.into();
        assert!(matches!(e2, AweError::Numeric(_)));
        let e3 = AweError::MomentMatrixSingular {
            order: 4,
            achievable: 2,
        };
        assert!(e3.to_string().contains("order 4"));
        assert!(e3.to_string().contains("2"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(AweError::ZeroResponse.source().is_none());
    }
}
