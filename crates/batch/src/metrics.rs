//! Run metrics: aggregate throughput, latency percentiles, and the
//! per-stage time breakdown of a batch run.
//!
//! Stage times come in two views. *CPU* time sums every net's stage
//! breakdown regardless of which worker ran it — total compute burned per
//! stage, which exceeds the run's wall time once workers overlap. *Wall*
//! time first attributes each net's stages to the worker that ran it
//! (`NetTiming::worker`), then takes the per-stage maximum across pool
//! workers: work on one worker is serialized, work on different workers
//! overlaps, so the busiest worker's stage total is the stage's wall-time
//! contribution. The sequential donor-presolve pass
//! ([`CALLER_WORKER`](crate::engine::CALLER_WORKER)) runs strictly
//! *before* the pool, so its stage sums add on top of the maximum instead
//! of competing in it — which also makes the two views coincide exactly
//! on single-threaded runs.

use std::collections::BTreeMap;
use std::time::Duration;

use awe::StageTimings;

use crate::engine::{BatchRun, CALLER_WORKER};

/// Aggregate metrics of one [`BatchRun`].
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Net count.
    pub nets: usize,
    /// AWE solves performed (cache misses).
    pub solves: usize,
    /// Results served from the cache.
    pub cache_hits: usize,
    /// Solves that reused a cached symbolic LU pattern (numeric
    /// refactorization instead of a full symbolic+numeric factor).
    pub pattern_hits: usize,
    /// Group tapes compiled this run (cache-served tapes compile nothing).
    pub tapes_compiled: usize,
    /// Tape replay invocations (one per scheduled member block).
    pub tape_replays: usize,
    /// Mean live-lane occupancy of the sparse lane blocks executed, in
    /// `[0, 1]` (`None` when no lane block ran).
    pub lane_occupancy: Option<f64>,
    /// Tape members that diverged from their block and finished on the
    /// scalar solve path.
    pub scalar_fallbacks: usize,
    /// Nets whose analysis failed.
    pub failures: usize,
    /// Nets that escalated past their requested/starting order.
    pub escalated: usize,
    /// Nets whose model needed a partial-Padé rescue (bad poles discarded
    /// and residues refit).
    pub rescued: usize,
    /// Worst §3.4 error estimate across solved nets, when any.
    pub worst_error: Option<f64>,
    /// Wall time spent parsing/generating the design.
    pub parse_time: Duration,
    /// End-to-end wall time of the analysis run.
    pub wall: Duration,
    /// Throughput in nets per second of wall time.
    pub nets_per_sec: f64,
    /// Median per-net latency (nearest-rank).
    pub p50: Duration,
    /// 95th-percentile per-net latency (nearest-rank).
    pub p95: Duration,
    /// 99th-percentile per-net latency (nearest-rank).
    pub p99: Duration,
    /// Per-stage CPU time summed across all solves (MNA assembly →
    /// LU factor/refactor → moments → Padé → residues). Exceeds `wall`
    /// when workers overlap.
    pub stages_cpu: StageTimings,
    /// Per-stage wall-time estimate: each net's stages are attributed to
    /// the worker that ran it; each stage takes the busiest pool worker's
    /// total plus the sequential presolve pass's sum (which runs before
    /// the pool). Never exceeds `stages_cpu`; the two coincide on
    /// single-threaded runs.
    pub stages_wall: StageTimings,
}

impl RunMetrics {
    /// Computes the metrics of a finished run.
    pub fn of(run: &BatchRun) -> Self {
        let mut latencies: Vec<Duration> = run.timings.iter().map(|t| t.latency).collect();
        latencies.sort_unstable();
        let mut stages_cpu = StageTimings::default();
        let mut per_worker: BTreeMap<usize, StageTimings> = BTreeMap::new();
        for t in &run.timings {
            add_stages(&mut stages_cpu, &t.stages);
            add_stages(per_worker.entry(t.worker).or_default(), &t.stages);
        }
        // The presolve pass is serialized before the pool: its stage sums
        // add to the wall estimate, while concurrent pool workers compete
        // (per-stage maximum over workers).
        let presolve = per_worker.remove(&CALLER_WORKER).unwrap_or_default();
        let mut stages_wall = StageTimings::default();
        for s in per_worker.values() {
            stages_wall.mna = stages_wall.mna.max(s.mna);
            stages_wall.factor = stages_wall.factor.max(s.factor);
            stages_wall.refactor = stages_wall.refactor.max(s.refactor);
            stages_wall.moments = stages_wall.moments.max(s.moments);
            stages_wall.pade = stages_wall.pade.max(s.pade);
            stages_wall.residues = stages_wall.residues.max(s.residues);
        }
        add_stages(&mut stages_wall, &presolve);
        let secs = run.wall.as_secs_f64();
        RunMetrics {
            nets: run.results.len(),
            solves: run.solves,
            cache_hits: run.cache_hits,
            pattern_hits: run.pattern_hits,
            tapes_compiled: run.tapes_compiled,
            tape_replays: run.tape_replays,
            lane_occupancy: (run.lane_blocks > 0).then(|| {
                run.lane_lanes as f64 / (run.lane_blocks * awe_numeric::LANE_WIDTH) as f64
            }),
            scalar_fallbacks: run.scalar_fallbacks,
            failures: run.results.iter().filter(|r| r.error.is_some()).count(),
            escalated: run.results.iter().filter(|r| r.escalations > 0).count(),
            rescued: run.results.iter().filter(|r| r.rescued).count(),
            worst_error: run
                .results
                .iter()
                .filter_map(|r| r.error_estimate)
                .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e)))),
            parse_time: run.parse_time,
            wall: run.wall,
            nets_per_sec: if secs > 0.0 {
                run.results.len() as f64 / secs
            } else {
                0.0
            },
            p50: percentile(&latencies, 50.0),
            p95: percentile(&latencies, 95.0),
            p99: percentile(&latencies, 99.0),
            stages_cpu,
            stages_wall,
        }
    }

    /// Cache hit rate in `[0, 1]` (zero for an empty run).
    pub fn hit_rate(&self) -> f64 {
        if self.nets == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.nets as f64
        }
    }
}

/// Aggregate metrics of one [`SweepRun`](crate::sweep::SweepRun): the
/// underlying batch metrics plus the sweep's own accounting — corner
/// census, boundary rejections, and the symbolic-work ledger whose
/// "after donor" entry being zero is the sweep's headline claim.
#[derive(Clone, Debug)]
pub struct SweepMetrics {
    /// Metrics of the underlying batch run over all corner members.
    pub batch: RunMetrics,
    /// Corners requested by the spec.
    pub corners: usize,
    /// Members scheduled (accepted corners × observation nodes).
    pub members: usize,
    /// Per-net corner rejections at the validation boundary.
    pub rejected: usize,
    /// Symbolic factorizations paid (`solves - pattern_hits`).
    pub new_symbolic: usize,
    /// Symbolic factorizations beyond the donor's — zero when every
    /// corner after the donor replayed a cached pattern.
    pub new_symbolic_after_donor: usize,
    /// Corners per second of batch wall time.
    pub corners_per_sec: f64,
}

impl SweepMetrics {
    /// Computes the metrics of a finished sweep.
    pub fn of(sweep: &crate::sweep::SweepRun) -> Self {
        SweepMetrics {
            batch: RunMetrics::of(&sweep.run),
            corners: sweep.spec.corners,
            members: sweep.members.len(),
            rejected: sweep.rejected.len(),
            new_symbolic: sweep.new_symbolic,
            new_symbolic_after_donor: sweep.new_symbolic_after_donor,
            corners_per_sec: sweep.corners_per_sec(),
        }
    }
}

fn add_stages(dst: &mut StageTimings, src: &StageTimings) {
    dst.mna += src.mna;
    dst.factor += src.factor;
    dst.refactor += src.refactor;
    dst.moments += src.moments;
    dst.pade += src.pade;
    dst.residues += src.residues;
}

/// Nearest-rank percentile of sorted latencies (`Duration::ZERO` when
/// empty).
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use crate::engine::{BatchEngine, BatchOptions};

    #[test]
    fn percentile_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 95.0), Duration::from_millis(95));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms[..1], 99.0), Duration::from_millis(1));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }

    #[test]
    fn metrics_of_a_run() {
        let design = Design::synthetic(10, 2);
        let engine = BatchEngine::new();
        let run = engine.run(&design, &BatchOptions::default());
        let m = RunMetrics::of(&run);
        assert_eq!(m.nets, 10);
        assert_eq!(m.solves, 10);
        assert_eq!(m.failures, 0);
        assert!(m.nets_per_sec > 0.0);
        assert!(m.p50 <= m.p95 && m.p95 <= m.p99);
        assert!(m.stages_cpu.total() > Duration::ZERO);
        assert!(m.stages_wall.total() > Duration::ZERO);
        assert!(m.stages_wall.total() <= m.stages_cpu.total());

        let rerun = engine.run(&design, &BatchOptions::default());
        let m2 = RunMetrics::of(&rerun);
        assert_eq!(m2.cache_hits, 10);
        assert!((m2.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_thread_wall_equals_cpu() {
        // With one worker everything is serialized on the caller thread
        // (presolve pass included), so the wall view degenerates to the
        // cpu view exactly.
        let design = Design::synthetic(9, 13);
        let run = BatchEngine::new().run(
            &design,
            &BatchOptions {
                threads: 1,
                ..BatchOptions::default()
            },
        );
        let m = RunMetrics::of(&run);
        assert_eq!(m.stages_cpu.total(), m.stages_wall.total());
    }

    #[test]
    fn multi_thread_wall_bounded_by_cpu() {
        let design = Design::synthetic(24, 3);
        let run = BatchEngine::new().run(
            &design,
            &BatchOptions {
                threads: 4,
                ..BatchOptions::default()
            },
        );
        let m = RunMetrics::of(&run);
        assert!(m.stages_wall.total() <= m.stages_cpu.total());
        assert!(m.stages_wall.total() > Duration::ZERO);
    }
}
