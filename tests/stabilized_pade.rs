//! Regression suite for the stabilized moment-matching pipeline: scaled
//! Hankel solves, partial-Padé pole filtering, and the trustworthy
//! auto-order.
//!
//! Two property families pin the invariants the fix introduced —
//! equilibration must not move well-conditioned answers, and the engine
//! must never ship a right-half-plane pole — and three `corpus_*` tests
//! replay the documented fuzz failures through the *default* engine path
//! (no harness-side order walk), freezing the before/after conditioning
//! in comments. CI's verify-smoke job runs the `corpus_*` filter.

use std::path::PathBuf;

use proptest::prelude::*;

use awesim::circuit::generators::random_rc_tree;
use awesim::circuit::{parse_deck, Circuit, NodeId, Waveform};
use awesim::core::pade::{match_poles, PadeOptions};
use awesim::core::{AweEngine, AweOptions};
use awesim::sim::{relative_l2_vs_sim, simulate, TransientOptions};

/// Order cap used by the verify harness (`num_states` clamped to 6); the
/// corpus replays here use the same cap so they exercise the exact
/// production walk.
const AUTO_ORDER_CAP: usize = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equilibration is powers-of-two only, so on well-conditioned
    /// moment sequences the γ-scaled and unscaled solves must recover
    /// the *same* poles to near machine precision — the row/column
    /// scaling may move the condition estimate but never the answer.
    #[test]
    fn scaled_and_unscaled_pade_agree(
        q in 1usize..4,
        base in -3.0f64..6.0,
        spread in 1.5f64..8.0,
        k0 in 0.5f64..2.0,
        k1 in 0.5f64..2.0,
        k2 in 0.5f64..2.0,
    ) {
        // Distinct negative-real poles in a bounded geometric spread and
        // O(1) residues: both Hankel solves are comfortably conditioned.
        let mag0 = 10f64.powf(base);
        let ks = [k0, k1, k2];
        let poles: Vec<f64> = (0..q).map(|i| -mag0 * spread.powi(i as i32)).collect();
        // Moment convention: entry r holds m_{r-1} = Σ k_i p_i^{-r}.
        let moments: Vec<f64> = (0..2 * q)
            .map(|r| {
                poles
                    .iter()
                    .zip(&ks)
                    .map(|(p, k)| k * p.powi(-(r as i32)))
                    .sum()
            })
            .collect();
        let on = match_poles(&moments, q, PadeOptions::default()).expect("scaled solve");
        let off = match_poles(
            &moments,
            q,
            PadeOptions {
                frequency_scaling: false,
                ..PadeOptions::default()
            },
        )
        .expect("unscaled solve");
        let sort = |r: &awesim::core::pade::PadeResult| {
            let mut re: Vec<f64> = r.poles.iter().map(|p| p.re).collect();
            re.sort_by(f64::total_cmp);
            re
        };
        for (a, b) in sort(&on).iter().zip(sort(&off).iter()) {
            prop_assert!(
                ((a - b) / a).abs() < 1e-10,
                "scaled pole {a} vs unscaled {b}"
            );
        }
    }

    /// Whatever the auto-order delivers — clean or partial-Padé rescued —
    /// every pole of the shipped model sits strictly in the left half
    /// plane. The rescue may *discard* unstable poles; it must never
    /// forward one.
    #[test]
    fn auto_order_never_ships_rhp_pole(n in 2usize..18, seed in 0u64..500) {
        let g = random_rc_tree(
            n,
            (1.0, 1000.0),
            (1e-14, 1e-12),
            seed,
            Waveform::step(0.0, 1.0),
        );
        let engine = AweEngine::new(&g.circuit).expect("builds");
        let cap = g.circuit.num_states().clamp(1, AUTO_ORDER_CAP);
        if let Ok((approx, _)) =
            engine.approximate_auto(g.output, 0.0, cap, AweOptions::default())
        {
            prop_assert!(approx.stable, "auto-order returned an unstable model");
            for p in approx.poles() {
                prop_assert!(p.re < 0.0, "shipped RHP pole {p:?} (seed {seed})");
            }
        }
    }
}

fn corpus_circuit(file: &str, node: &str) -> (Circuit, NodeId) {
    let deck = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/corpus/{file}")),
    )
    .expect("corpus deck readable");
    let circuit = parse_deck(&deck).expect("corpus deck parses");
    let output = circuit.find_node(node).expect("output node exists");
    (circuit, output)
}

/// Mesh deck (seed-0 case 461). Before the fix the blind §3.4 auto-order
/// accepted the q = 5 model at a hidden moment-matrix condition ≈ 6.1e19
/// and overshot the reference 1400×. The equilibrated solve now reports
/// that condition honestly, q = 5 and q = 6 fail the 1e14 trust cap, and
/// the walk delivers the q = 4 model at condition ≈ 4.2e10 — within a few
/// percent of the simulator, through the default engine path alone.
#[test]
fn corpus_mesh_auto_order_is_trustworthy() {
    let (circuit, output) = corpus_circuit("rc-mesh-residue-breakdown.sp", "m1_4");
    let engine = AweEngine::new(&circuit).expect("builds");
    let cap = circuit.num_states().clamp(1, AUTO_ORDER_CAP);
    let (approx, trail) = engine
        .approximate_auto(output, 0.0, cap, AweOptions::default())
        .expect("a trustworthy order exists");
    assert_eq!(approx.order, 4, "trail: {trail:?}");
    assert!(approx.stable);
    assert_eq!(approx.discarded, 0, "the q = 4 model needs no rescue");
    assert!(
        approx.condition < 1e12,
        "condition regressed: {:.3e}",
        approx.condition
    );
    let sim = simulate(&circuit, TransientOptions::new(approx.horizon())).expect("sim");
    let err = relative_l2_vs_sim(&sim, output, |t| approx.eval(t)).expect("finite comparison");
    assert!(err < 0.05, "waveform error {err} (was ~1400× overshoot)");
}

/// Tree deck (seed-0 case 224). The q = 5 model grows a right-half-plane
/// pole at +1.04e13; the partial-Padé rescue discards it and refits the
/// residues against the retained moments (§5.3's partial match keeping
/// m₋₁/m₀). The direct q = 5 request demonstrates the rescue; the
/// auto-order still prefers the clean q = 4 model.
#[test]
fn corpus_tree_rescue_discards_rhp_pole() {
    let (circuit, output) = corpus_circuit("rc-tree-unstable-q5.sp", "n16");
    let engine = AweEngine::new(&circuit).expect("builds");
    let rescued = engine
        .approximate_with(
            output,
            5,
            AweOptions {
                max_escalation: 0,
                ..AweOptions::default()
            },
        )
        .expect("rescue succeeds at q = 5");
    assert!(rescued.stable, "rescued model must be stable");
    assert!(rescued.discarded >= 1, "the RHP pole must be discarded");
    for p in rescued.poles() {
        assert!(p.re < 0.0, "rescued model shipped RHP pole {p:?}");
    }

    let cap = circuit.num_states().clamp(1, AUTO_ORDER_CAP);
    let (auto, _) = engine
        .approximate_auto(output, 0.0, cap, AweOptions::default())
        .expect("a trustworthy order exists");
    assert_eq!(auto.order, 4);
    assert_eq!(auto.discarded, 0, "clean model preferred over rescued");
    let sim = simulate(&circuit, TransientOptions::new(auto.horizon())).expect("sim");
    let err = relative_l2_vs_sim(&sim, output, |t| auto.eval(t)).expect("finite comparison");
    assert!(err < 0.05, "waveform error {err}");
}

/// Ladder deck (seed-0 case 442, Q ≈ 3400). A first-order model of the
/// ringing RLC ladder matches its two moments perfectly yet misses the
/// ring entirely — the §3.4 estimate alone cannot see that. The
/// moment-tail check does: the q = 1 model leaves the unmatched tail
/// entries at O(1) relative error while q = 2 reproduces them to
/// rounding, so auto-order must deliver the full-order q = 2 model (the
/// exact transfer function). No simulator comparison here: the deck's
/// documented finding is that the trapezoidal reference itself drifts
/// ~14% in phase over the ~13000 ring cycles.
#[test]
fn corpus_ladder_moment_tail_forces_full_order() {
    let (circuit, output) = corpus_circuit("rlc-ladder-high-q-ring.sp", "n1");
    let engine = AweEngine::new(&circuit).expect("builds");

    let truncated = engine
        .approximate_with(
            output,
            1,
            AweOptions {
                max_escalation: 0,
                ..AweOptions::default()
            },
        )
        .expect("q = 1 solves");
    assert!(
        truncated.moment_tail.is_some_and(|t| t > 0.1),
        "the q = 1 model must flag its unmatched ring mode: {:?}",
        truncated.moment_tail
    );

    let cap = circuit.num_states().clamp(1, AUTO_ORDER_CAP);
    let (approx, trail) = engine
        .approximate_auto(output, 0.0, cap, AweOptions::default())
        .expect("a trustworthy order exists");
    assert_eq!(approx.order, 2, "trail: {trail:?}");
    assert!(approx.stable);
    assert!(
        approx.moment_tail.is_some_and(|t| t < 1e-8),
        "full-order tail should be at rounding level: {:?}",
        approx.moment_tail
    );
    assert!(
        approx.poles().iter().any(|p| p.im != 0.0),
        "the delivered model must carry the complex ring pair"
    );
}
