//! Crosstalk analysis with floating coupling capacitors (paper §5.3).
//!
//! Two parallel RC lines: the aggressor switches 0 → 5 V, the victim is
//! held quiet by its driver. The coupling capacitors dump charge onto the
//! victim; AWE predicts the noise pulse at the victim's far end without a
//! transient simulation, and the `m₀`-matching property guarantees the
//! *transferred charge* (the area under the noise pulse) is exact at any
//! order.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example crosstalk
//! ```

use awesim::circuit::generators::coupled_rc_lines;
use awesim::circuit::Waveform;
use awesim::core::AweEngine;
use awesim::sim::{simulate, TransientOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let segments = 8;
    let (r, c) = (40.0, 0.25e-12);
    println!("coupled {segments}-segment lines, R = {r} Ω/seg, C = {c:e} F/seg");
    println!("\n  Cc/C    AWE peak [V]   sim peak [V]   AWE t_peak [ps]");

    for ratio in [0.1, 0.25, 0.5, 1.0, 2.0] {
        let coupling = c * ratio;
        let g = coupled_rc_lines(
            segments,
            r,
            c,
            coupling,
            Waveform::rising_step(0.0, 5.0, 50e-12),
        );
        let engine = AweEngine::new(&g.circuit)?;
        let victim = engine.approximate(g.output, 4)?;

        // Scan the noise pulse.
        let horizon = victim.horizon();
        let n = 2000;
        let (mut peak, mut t_peak) = (0.0f64, 0.0f64);
        for i in 0..n {
            let t = horizon * i as f64 / n as f64;
            let v = victim.eval(t);
            if v > peak {
                peak = v;
                t_peak = t;
            }
        }

        let sim = simulate(&g.circuit, TransientOptions::new(horizon))?;
        let sim_peak = sim
            .waveform(g.output)
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);

        println!(
            "  {ratio:4.2}   {peak:12.4}   {sim_peak:12.4}   {:15.1}",
            t_peak * 1e12
        );
    }

    println!(
        "\nThe victim noise grows with the coupling ratio; AWE (order 4) tracks\n\
         the simulated peak. Charge transferred is exact by construction: the\n\
         paper's §5.3 'area under these voltage curves … is always exact'."
    );
    Ok(())
}
