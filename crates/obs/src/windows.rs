//! Rolling-window aggregation for long-lived processes.
//!
//! The one-shot [`crate::Counter`]/[`crate::Histogram`] statics
//! accumulate since [`crate::Recording::start`] — the right shape for a
//! batch run, useless for a daemon three days in, where "p99 since
//! boot" hides the regression that started an hour ago. The types here
//! aggregate over a **bucket ring**: a fixed number of slots, each
//! covering one wall-clock interval, rotated lazily as time advances.
//! A snapshot sums the live slots, so rates and quantiles always
//! describe the most recent `slots × slot_ns` of activity.
//!
//! Design points:
//!
//! * **Explicit clocks.** Every mutating call takes `now_ns` (the
//!   caller's monotonic clock — the daemon passes nanoseconds since its
//!   epoch). Nothing here reads a clock, which is what makes rotation
//!   property-testable across arbitrary time jumps.
//! * **Slot alignment is global.** A slot covers
//!   `[k·slot_ns, (k+1)·slot_ns)` for integer `k`, so two windows fed
//!   the same clock agree on slot boundaries and snapshots quantize
//!   identically no matter when the window was created.
//! * **Mergeable snapshots.** [`WindowSnapshot`] is a plain
//!   count/sum/bucket-vector; merging is element-wise addition
//!   (associative and commutative, property-tested), so per-verb
//!   windows roll up into an all-verbs view without re-observing
//!   anything.
//! * **Time never runs backwards.** A `now_ns` earlier than the newest
//!   slot clamps into that slot rather than rotating backwards, so a
//!   non-monotonic caller clock degrades accuracy, not correctness.
//!
//! These are plain owned values (no atomics, no registry): a daemon
//! holds them behind its own lock and they work with or without a live
//! [`crate::Recording`].

use crate::metrics::{bucket_bounds, bucket_index, HIST_BUCKETS};

/// Shape of a rolling window: `slots` intervals of `slot_ns` each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSpec {
    /// Ring length — how many intervals the window retains.
    pub slots: usize,
    /// Width of one interval in nanoseconds.
    pub slot_ns: u64,
}

impl WindowSpec {
    /// The last minute at one-second resolution.
    pub const MINUTE: WindowSpec = WindowSpec {
        slots: 60,
        slot_ns: 1_000_000_000,
    };

    /// The last fifteen minutes at thirty-second resolution.
    pub const QUARTER_HOUR: WindowSpec = WindowSpec {
        slots: 30,
        slot_ns: 30_000_000_000,
    };

    /// A window of `slots` intervals of `slot_ns` nanoseconds each.
    /// Both must be nonzero.
    pub const fn new(slots: usize, slot_ns: u64) -> WindowSpec {
        assert!(slots > 0 && slot_ns > 0, "degenerate window spec");
        WindowSpec { slots, slot_ns }
    }

    /// Total span the window covers, in nanoseconds.
    pub const fn span_ns(&self) -> u64 {
        self.slots as u64 * self.slot_ns
    }
}

/// The shared ring: slot storage plus lazy rotation. `head` is the slot
/// holding the newest interval; `head_slot` is that interval's global
/// index (`now / slot_ns`), `None` until the first touch.
#[derive(Clone, Debug)]
struct Ring<T> {
    spec: WindowSpec,
    slots: Vec<T>,
    head: usize,
    head_slot: Option<u64>,
}

impl<T> Ring<T> {
    fn new(spec: WindowSpec, make: impl Fn() -> T) -> Ring<T> {
        Ring {
            spec,
            slots: (0..spec.slots).map(|_| make()).collect(),
            head: 0,
            head_slot: None,
        }
    }

    /// Advances the ring so `head` covers the interval containing
    /// `now_ns`, resetting every interval skipped over. Backward time
    /// clamps into the current head interval.
    fn rotate(&mut self, now_ns: u64, reset: impl Fn(&mut T)) {
        let k = now_ns / self.spec.slot_ns;
        let Some(head_slot) = self.head_slot else {
            self.head_slot = Some(k);
            return;
        };
        if k <= head_slot {
            return;
        }
        let advance = k - head_slot;
        if advance >= self.spec.slots as u64 {
            // The whole window aged out while nothing was recorded.
            for slot in &mut self.slots {
                reset(slot);
            }
        } else {
            for _ in 0..advance {
                self.head = (self.head + 1) % self.spec.slots;
                reset(&mut self.slots[self.head]);
            }
        }
        self.head_slot = Some(k);
    }
}

/// A monotone counter with a rolling-window view: total since creation
/// plus the count landed in the last [`WindowSpec::span_ns`].
#[derive(Clone, Debug)]
pub struct WindowedCounter {
    ring: Ring<u64>,
    total: u64,
}

/// A [`WindowedCounter`] reading: the since-creation total and the
/// recent-window count it was taken with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterWindow {
    /// Count since the counter was created.
    pub total: u64,
    /// Count landed within the window ending at the snapshot's `now_ns`.
    pub in_window: u64,
    /// The window span the `in_window` count covers, in nanoseconds.
    pub window_ns: u64,
}

impl CounterWindow {
    /// The windowed count as a per-second rate.
    pub fn rate_per_sec(&self) -> f64 {
        self.in_window as f64 / (self.window_ns as f64 / 1e9)
    }
}

impl WindowedCounter {
    /// An empty counter over `spec`.
    pub fn new(spec: WindowSpec) -> WindowedCounter {
        WindowedCounter {
            ring: Ring::new(spec, || 0),
            total: 0,
        }
    }

    /// Adds `n` at time `now_ns`.
    pub fn add(&mut self, now_ns: u64, n: u64) {
        self.ring.rotate(now_ns, |s| *s = 0);
        self.ring.slots[self.ring.head] += n;
        self.total += n;
    }

    /// The reading as of `now_ns` (rotates first, so slots older than
    /// the window no longer count).
    pub fn snapshot(&mut self, now_ns: u64) -> CounterWindow {
        self.ring.rotate(now_ns, |s| *s = 0);
        CounterWindow {
            total: self.total,
            in_window: self.ring.slots.iter().sum(),
            window_ns: self.ring.spec.span_ns(),
        }
    }
}

/// One histogram interval: observation count, value sum, and the same
/// IEEE-exponent bucket layout as [`crate::Histogram`].
#[derive(Clone, Debug)]
struct HistSlot {
    count: u64,
    sum: f64,
    buckets: Vec<u64>,
}

impl HistSlot {
    fn empty() -> HistSlot {
        HistSlot {
            count: 0,
            sum: 0.0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    fn reset(&mut self) {
        self.count = 0;
        self.sum = 0.0;
        self.buckets.fill(0);
    }
}

/// A log-scale histogram over a rolling window, bucketed exactly like
/// [`crate::Histogram`] (IEEE-754 exponent bits, see
/// [`crate::bucket_index`]).
#[derive(Clone, Debug)]
pub struct WindowedHistogram {
    ring: Ring<HistSlot>,
    total_count: u64,
    total_sum: f64,
}

impl WindowedHistogram {
    /// An empty histogram over `spec`.
    pub fn new(spec: WindowSpec) -> WindowedHistogram {
        WindowedHistogram {
            ring: Ring::new(spec, HistSlot::empty),
            total_count: 0,
            total_sum: 0.0,
        }
    }

    /// Records one observation at time `now_ns`.
    pub fn record(&mut self, now_ns: u64, v: f64) {
        self.ring.rotate(now_ns, HistSlot::reset);
        let slot = &mut self.ring.slots[self.ring.head];
        slot.count += 1;
        slot.sum += v;
        slot.buckets[bucket_index(v)] += 1;
        self.total_count += 1;
        self.total_sum += v;
    }

    /// Observations since creation (not windowed).
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// Sum of all observations since creation (not windowed).
    pub fn total_sum(&self) -> f64 {
        self.total_sum
    }

    /// The window's contents as of `now_ns`, as a mergeable snapshot.
    pub fn snapshot(&mut self, now_ns: u64) -> WindowSnapshot {
        self.ring.rotate(now_ns, HistSlot::reset);
        let mut out = WindowSnapshot::empty();
        for slot in &self.ring.slots {
            out.count += slot.count;
            out.sum += slot.sum;
            for (acc, n) in out.buckets.iter_mut().zip(&slot.buckets) {
                *acc += n;
            }
        }
        out
    }
}

/// A windowed histogram reading: plain counts, so merging two snapshots
/// is element-wise addition — associative and commutative, which is
/// what lets per-verb windows roll up into aggregate views.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSnapshot {
    /// Observations in the window.
    pub count: u64,
    /// Sum of observed values in the window.
    pub sum: f64,
    /// Per-bucket observation counts ([`HIST_BUCKETS`] entries; decode
    /// ranges with [`bucket_bounds`]).
    pub buckets: Vec<u64>,
}

impl WindowSnapshot {
    /// A snapshot with nothing in it.
    pub fn empty() -> WindowSnapshot {
        WindowSnapshot {
            count: 0,
            sum: 0.0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// Adds `other`'s contents into `self` (element-wise).
    pub fn merge(&mut self, other: &WindowSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (acc, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *acc += n;
        }
    }

    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate (`q` in `[0, 1]`), or 0 when
    /// empty. The estimate is the geometric midpoint of the bucket the
    /// rank lands in, so it is accurate to the power-of-two bucket
    /// width — the right trade for latency monitoring, where "p99 ≈
    /// 1.4 ms" answers the question and exact order statistics would
    /// mean retaining every sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return if i == 0 {
                    hi // underflow bucket: report its upper edge
                } else if i == HIST_BUCKETS - 1 {
                    lo // overflow bucket: report its lower edge
                } else {
                    (lo * hi).sqrt()
                };
            }
        }
        0.0
    }
}
