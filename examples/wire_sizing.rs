//! Greedy wire sizing driven by Elmore sensitivities.
//!
//! The classic post-layout optimization: widen the wire segment whose
//! resistance hurts the critical sink the most, paying for it with added
//! capacitance. The Elmore sensitivities `∂T_D/∂R` and `∂T_D/∂C` from the
//! `O(n)` tree walk rank the candidates; AWE order-3 confirms each move
//! with an accurate delay.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example wire_sizing
//! ```

use awesim::circuit::{parse_deck, Circuit};
use awesim::core::AweEngine;
use awesim::treelink::TreeAnalysis;

/// Widening a segment by `k` divides its resistance by `k` and multiplies
/// its (area) capacitance by `k`.
fn widen(circuit: &Circuit, segment: &str, k: f64) -> Circuit {
    let deck = circuit.to_deck();
    let cap_name = segment.replace('R', "C");
    let new_deck: String = deck
        .lines()
        .map(|line| {
            let mut parts: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
            if parts.first().is_some_and(|p| p == segment) {
                let v: f64 = parts[3].parse().expect("numeric value");
                parts[3] = format!("{:e}", v / k);
                parts.join(" ")
            } else if parts.first().is_some_and(|p| *p == cap_name) {
                let v: f64 = parts[3].parse().expect("numeric value");
                parts[3] = format!("{:e}", v * k);
                parts.join(" ")
            } else {
                line.to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    parse_deck(&new_deck).expect("perturbed deck parses")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A long thin net: driver, five skinny segments, a heavy sink load.
    let ckt = parse_deck(
        "V1 in 0 STEP 0 5
Rdrv in w0 120
R1 w0 w1 180
C1 w1 0 0.08p
R2 w1 w2 180
C2 w2 0 0.08p
R3 w2 w3 180
C3 w3 0 0.08p
R4 w3 w4 180
C4 w4 0 0.08p
R5 w4 sink 180
C5 sink 0 0.08p
Cpin sink 0 0.15p",
    )?;

    let delay_of = |c: &Circuit| -> f64 {
        let node = c.find_node("sink").expect("sink");
        let engine = AweEngine::new(c).expect("builds");
        engine
            .approximate(node, 3)
            .expect("order 3")
            .delay_50()
            .expect("rising")
    };

    println!("greedy wire widening (each step: widen the best segment 2x)\n");
    println!("  step   widened   dT/dR [ps/Ω]   AWE-3 delay [ps]");
    let mut current = ckt.clone();
    let d0 = delay_of(&current);
    println!("  {:4}   {:7}   {:12}   {:15.1}", 0, "-", "-", d0 * 1e12);

    for step in 1..=6 {
        // Rank candidates by net first-order benefit of widening 2×:
        // ΔT ≈ ∂T/∂R·(R/2 − R) + ∂T/∂C·(C·2 − C).
        let ta = TreeAnalysis::new(&current)?;
        let node = current.find_node("sink").expect("sink");
        let s = ta.elmore_sensitivities(node)?;
        let mut best: Option<(String, f64, f64)> = None;
        for (rname, d_r) in &s.wrt_resistance {
            if rname == "Rdrv" {
                continue; // the driver is not a wire
            }
            let cname = rname.replace('R', "C");
            let d_c = s
                .wrt_capacitance
                .iter()
                .find(|(n, _)| *n == cname)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            let (r, c) = match (current.element(rname), current.element(&cname)) {
                (
                    Some(awesim::circuit::Element::Resistor { ohms, .. }),
                    Some(awesim::circuit::Element::Capacitor { farads, .. }),
                ) => (*ohms, *farads),
                _ => continue,
            };
            let benefit = d_r * (r / 2.0 - r) + d_c * c; // ΔT for 2× widening
            if best.as_ref().is_none_or(|(_, b, _)| benefit < *b) {
                best = Some((rname.clone(), benefit, *d_r));
            }
        }
        let (segment, benefit, d_r) = best.expect("candidates exist");
        if benefit >= 0.0 {
            println!("  {step:4}   (stop: no segment predicts further improvement)");
            break;
        }
        current = widen(&current, &segment, 2.0);
        let d = delay_of(&current);
        println!(
            "  {step:4}   {segment:7}   {:12.3}   {:15.1}",
            d_r * 1e12,
            d * 1e12
        );
    }

    let d_final = delay_of(&current);
    println!(
        "\ndelay improved {:.1} ps -> {:.1} ps ({:.0} %) by sensitivity-guided\n\
         widening; each ranking costs one O(n) tree walk, each check one AWE run.",
        d0 * 1e12,
        d_final * 1e12,
        (1.0 - d_final / d0) * 100.0
    );
    // Sanity: the greedy loop must actually help.
    assert!(d_final < d0, "widening should not hurt the critical sink");
    Ok(())
}
