//! §IV scaling — the `O(n)` tree walk vs the dense MNA moment engine on
//! random RC trees of growing size.
//!
//! The paper's claim: Elmore delays (and higher moments) for *all* nodes
//! of an RC tree cost `O(n)` by tree walking. The dense engine is
//! `O(n³)`; the crossover and the widening gap are what this bench plots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use awe_circuit::generators::random_rc_tree;
use awe_circuit::Waveform;
use awe_mna::{MnaSystem, MomentEngine};
use awe_treelink::TreeAnalysis;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_tree_walk");
    for &n in &[16usize, 64, 256, 1024] {
        let g = random_rc_tree(
            n,
            (10.0, 200.0),
            (0.05e-12, 1e-12),
            42,
            Waveform::step(0.0, 5.0),
        );

        group.bench_with_input(BenchmarkId::new("tree_walk", n), &g, |b, g| {
            b.iter(|| {
                let ta = TreeAnalysis::new(black_box(&g.circuit)).expect("builds");
                let m = ta.step_moments(&[5.0], 4).expect("moments");
                black_box(m);
            })
        });

        // The dense engine is cubic; skip the largest size to keep the
        // suite fast.
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("dense_mna", n), &g, |b, g| {
                b.iter(|| {
                    let sys = MnaSystem::build(black_box(&g.circuit)).expect("builds");
                    let eng = MomentEngine::new(&sys).expect("factor");
                    let dec = eng.decompose(4).expect("moments");
                    black_box(dec);
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scaling
}
criterion_main!(benches);
