//! Property-based tests for the symbolic/numeric LU split: a numeric
//! refactorization on perturbed values must reproduce a fresh
//! factorization's pattern bit-for-bit and its solutions to rounding
//! level, and must reject matrices the stored analysis no longer fits.

use std::collections::HashMap;

use proptest::prelude::*;

use awe_numeric::{NumericError, SparseLu, SparseMatrix};

/// Collapses raw `(row, col, magnitude, sign)` draws into off-diagonal
/// placements inside an `n×n` matrix (indices taken modulo `n`).
fn offdiag_of(n: usize, raw: &[(usize, usize, f64, usize)]) -> Vec<(usize, usize, f64)> {
    raw.iter()
        .map(|&(r, c, mag, sgn)| (r % n, c % n, if sgn == 0 { mag } else { -mag }))
        .collect()
}

/// Assembles the matrix: collapsed off-diagonal entries plus a diagonal
/// that dominates every column (so threshold pivoting keeps it, and the
/// pivot sequence survives small value perturbations). `scale` applies a
/// per-entry relative factor — identity for the base matrix, `1 + ε` for
/// the perturbed one — over an identical sparsity structure.
fn assemble(
    n: usize,
    offdiag: &[(usize, usize, f64)],
    scale: impl Fn(usize) -> f64,
) -> SparseMatrix {
    let mut entries: HashMap<(usize, usize), f64> = HashMap::new();
    for &(r, c, v) in offdiag {
        if r != c {
            *entries.entry((r, c)).or_insert(0.0) += v;
        }
    }
    // Deterministic entry order so `scale(k)` hits the same entry in the
    // base and perturbed assemblies.
    let mut keys: Vec<(usize, usize)> = entries.keys().copied().collect();
    keys.sort_unstable();
    let mut colsum = vec![0.0f64; n];
    for (&(_, c), v) in &entries {
        colsum[c] += v.abs();
    }
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(keys.len() + n);
    for (k, &(r, c)) in keys.iter().enumerate() {
        triplets.push((r, c, entries[&(r, c)] * scale(k + n)));
    }
    for (j, sum) in colsum.iter().enumerate() {
        triplets.push((j, j, (sum + 1.0) * scale(j)));
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

/// Re-extracts a matrix as triplets with one entry's value mapped.
fn remap(m: &SparseMatrix, f: impl Fn(usize, usize, f64) -> f64) -> Vec<(usize, usize, f64)> {
    let mut triplets = Vec::new();
    for j in 0..m.cols() {
        let (rows, vals) = m.col(j);
        for (&i, &v) in rows.iter().zip(vals) {
            triplets.push((i, j, f(i, j, v)));
        }
    }
    triplets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Refactor on perturbed values == fresh factor, bit for bit: the
    /// reused pattern fingerprints identically to the one a cold factor
    /// of the perturbed matrix discovers, and every solution component
    /// agrees within 1e-12 relative.
    #[test]
    fn refactor_matches_fresh_factor(
        n in 3usize..24,
        raw in proptest::collection::vec(
            (0usize..4096, 0usize..4096, 0.1f64..1.0, 0usize..2), 0..72),
        eps in proptest::collection::vec(-1e-3f64..1e-3, 97),
    ) {
        let offdiag = offdiag_of(n, &raw);
        let base = assemble(n, &offdiag, |_| 1.0);
        let perturbed = assemble(n, &offdiag, |k| 1.0 + eps[k % eps.len()]);

        let cold = SparseLu::factor(&base, None).expect("diagonally dominant");
        let sym = cold.symbolic().clone();
        let re = SparseLu::refactor(&sym, &perturbed).expect("same pattern, dominant diagonal");
        let fresh = SparseLu::factor(&perturbed, Some(sym.col_order()))
            .expect("diagonally dominant");

        // Bit-for-bit pattern agreement: the fresh symbolic analysis of
        // the perturbed matrix rediscovers exactly the stored pattern.
        prop_assert_eq!(fresh.symbolic().fingerprint(), sym.fingerprint());
        prop_assert_eq!(fresh.symbolic().pattern_nnz(), sym.pattern_nnz());
        prop_assert_eq!(fresh.factor_nnz(), re.factor_nnz());

        // Numeric agreement within 1e-12 (the two paths run the same
        // update schedule, so they are typically *exactly* equal; the
        // tolerance guards the comparison, not the algorithm).
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.1).collect();
        let x_re = re.solve(&b).expect("solvable");
        let x_fresh = fresh.solve(&b).expect("solvable");
        for (p, q) in x_re.iter().zip(&x_fresh) {
            prop_assert!(
                (p - q).abs() <= 1e-12 * q.abs().max(1.0),
                "refactor {} vs fresh {}", p, q
            );
        }

        // And both actually solve the perturbed system.
        let ax = perturbed.mul_vec(&x_re);
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-8, "residual {} vs {}", p, q);
        }
    }

    /// A structural edit (new entry outside the analysed pattern) must be
    /// rejected as a pattern mismatch, never silently misfactored.
    #[test]
    fn refactor_rejects_structural_edits(
        n in 3usize..16,
        raw in proptest::collection::vec(
            (0usize..4096, 0usize..4096, 0.1f64..1.0, 0usize..2), 0..32),
    ) {
        let offdiag = offdiag_of(n, &raw);
        let base = assemble(n, &offdiag, |_| 1.0);
        let cold = SparseLu::factor(&base, None).expect("diagonally dominant");
        let sym = cold.symbolic().clone();

        // Find a zero slot to fill (skip fully dense draws).
        let dense = base.to_dense();
        let mut slot = None;
        'scan: for r in 0..n {
            for c in 0..n {
                if dense[(r, c)] == 0.0 {
                    slot = Some((r, c));
                    break 'scan;
                }
            }
        }
        prop_assume!(slot.is_some());
        let (r, c) = slot.unwrap();
        let mut triplets = remap(&base, |_, _, v| v);
        triplets.push((r, c, 0.5));
        let edited = SparseMatrix::from_triplets(n, n, &triplets);

        match SparseLu::refactor(&sym, &edited) {
            Err(NumericError::PatternMismatch { expected, actual }) => {
                prop_assert!(expected != actual);
            }
            other => prop_assert!(false, "expected PatternMismatch, got {:?}", other),
        }
    }

    /// Values that break the stored pivot order (a pivot collapsed to
    /// rounding level below its column) must be rejected as singular at
    /// that pivot, not propagated into a garbage factorization.
    #[test]
    fn refactor_rejects_inadmissible_pivots(
        n in 3usize..16,
        raw in proptest::collection::vec(
            (0usize..4096, 0usize..4096, 0.1f64..1.0, 0usize..2), 0..32),
    ) {
        // Force at least one off-diagonal in column 0 so the collapsed
        // diagonal pivot is dominated (a single-entry column is its own
        // maximum and stays admissible at any magnitude).
        let mut offdiag = offdiag_of(n, &raw);
        offdiag.push((n - 1, 0, 0.7));
        let base = assemble(n, &offdiag, |_| 1.0);
        let cold = SparseLu::factor(&base, None).expect("diagonally dominant");
        let sym = cold.symbolic().clone();

        // Same pattern, but the (0,0) pivot shrinks to ~zero.
        let triplets = remap(&base, |i, j, v| if i == 0 && j == 0 { v * 1e-30 } else { v });
        let collapsed = SparseMatrix::from_triplets(n, n, &triplets);

        match SparseLu::refactor(&sym, &collapsed) {
            Err(NumericError::Singular { pivot }) => prop_assert_eq!(pivot, 0),
            other => prop_assert!(false, "expected Singular at pivot 0, got {:?}", other),
        }
    }
}
