//! Moment-based worst-case bounds for monotone RC-tree step responses.
//!
//! Before AWE, the Penfield–Rubinstein school (paper refs. 7 and 14)
//! bracketed RC-tree responses with provable envelopes instead of
//! approximating the waveform. This module provides the moment-based
//! members of that family, stated and proved from first principles so the
//! guarantees are unconditional:
//!
//! For a monotone rising step response `v(t) → V` with transient moments
//! `m₀ = ∫ (V - v) dt = V·T_D` and `m₁' = ∫ t·(V - v) dt` (both one
//! `O(n)` tree walk each):
//!
//! * **First-moment (Markov) bound**: since `V - v` is non-increasing,
//!   `(V - v(t))·t ≤ ∫₀ᵗ (V - v) ≤ m₀`, so `v(t) ≥ V·(1 - T_D/t)`.
//! * **Second-moment bound**: `(V - v(t))·t²/2 ≤ ∫₀ᵗ s·(V - v) ds ≤ m₁'`,
//!   so `v(t) ≥ V - 2·m₁'/t²`.
//!
//! Inverting gives guaranteed delay ceilings: the time to reach fraction
//! `θ` of the swing is at most `min(T_D/(1-θ), sqrt(2·m₁'/(V·(1-θ))))`.
//! The paper's §4.4 remark that such envelopes are "sometimes overly
//! pessimistic" is exactly what AWE improves on — these bounds quantify
//! the comparison.

use awe_circuit::{Circuit, Element, NodeId};
use awe_treelink::TreeAnalysis;

use crate::error::AweError;

/// Guaranteed bounds for one node's monotone step response.
///
/// # Examples
///
/// ```
/// use awe::bounds::StepBounds;
/// use awe_circuit::papers::fig4;
/// use awe_circuit::Waveform;
///
/// # fn main() -> Result<(), awe::AweError> {
/// let p = fig4(Waveform::step(0.0, 5.0));
/// let b = StepBounds::for_node(&p.circuit, p.output)?;
/// // The 50 % point is guaranteed to arrive within 2·T_D = 1.4 ms.
/// let ceiling = b.delay_ceiling(0.5).expect("rising response");
/// assert!(ceiling <= 2.0 * 7e-4 + 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct StepBounds {
    /// Total swing `V` (final minus initial value).
    pub swing: f64,
    /// Initial value (pre-step equilibrium).
    pub v0: f64,
    /// `m₀ = ∫ (V - v) dt = |swing|·T_D` — the Elmore area.
    pub m0: f64,
    /// `m₁' = ∫ t·(V - v) dt` — the first time-weighted area.
    pub m1: f64,
}

impl StepBounds {
    /// Computes the bounds for `node` of a strict RC tree whose sources
    /// step from their initial to final values at `t = 0`.
    ///
    /// # Errors
    ///
    /// * Tree/link errors for circuits outside the strict RC-tree class
    ///   (bounds require provable monotonicity).
    /// * [`AweError::ZeroResponse`] if the node sees no swing.
    pub fn for_node(circuit: &Circuit, node: NodeId) -> Result<StepBounds, AweError> {
        let ta = TreeAnalysis::new(circuit)?;
        if !ta.is_strict_tree() {
            return Err(AweError::TreeLink(awe_treelink::TreeLinkError::NotRcTree));
        }
        let mut u0 = Vec::new();
        let mut jumps = Vec::new();
        for e in circuit.elements() {
            if let Element::VoltageSource { waveform, .. } = e {
                u0.push(waveform.initial_value());
                jumps.push(waveform.final_value() - waveform.initial_value());
            }
        }
        let baseline = ta.dc(&u0)?;
        // Moments of the homogeneous transient h = v - v(∞):
        // m_{-1} = -swing, m_0 = ∫ -h = swing·T_D, m_1 = ∫ t·(-h)·(-1)…
        // With our convention m_j = Σ k/p^{j+1}: ∫ -h dt = m_0 and
        // ∫ t·(-h) dt = -m_1.
        let m = ta.step_moments(&jumps, 3)?;
        let swing = -m[0][node];
        if swing == 0.0 {
            return Err(AweError::ZeroResponse);
        }
        Ok(StepBounds {
            swing,
            v0: baseline[node],
            m0: m[1][node] * swing.signum(),
            m1: -m[2][node] * swing.signum(),
        })
    }

    /// The Elmore delay `T_D = m₀ / |swing|`.
    pub fn elmore_delay(&self) -> f64 {
        self.m0 / self.swing.abs()
    }

    /// Guaranteed floor on the *progress* toward the final value:
    /// the response fraction `(v(t) - v0)/swing` is at least this.
    /// Always in `[0, 1)`.
    pub fn progress_floor(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let s = self.swing.abs();
        let markov = 1.0 - self.m0 / (s * t);
        let second = 1.0 - 2.0 * self.m1 / (s * t * t);
        markov.max(second).clamp(0.0, 1.0)
    }

    /// Guaranteed voltage envelope at time `t`: the response is at least
    /// this far along (for a rising swing this is a voltage floor; for a
    /// falling swing a ceiling).
    pub fn voltage_envelope(&self, t: f64) -> f64 {
        self.v0 + self.swing * self.progress_floor(t)
    }

    /// Guaranteed ceiling on the time to complete fraction `theta` of the
    /// swing (e.g. `0.5` for the 50 % delay): the true delay can never
    /// exceed this. `None` for `theta ≥ 1`.
    pub fn delay_ceiling(&self, theta: f64) -> Option<f64> {
        if !(0.0..1.0).contains(&theta) {
            return None;
        }
        let rem = 1.0 - theta;
        let s = self.swing.abs();
        let markov = self.m0 / (s * rem);
        let second = (2.0 * self.m1 / (s * rem)).max(0.0).sqrt();
        Some(markov.min(second))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AweEngine;
    use awe_circuit::generators::random_rc_tree;
    use awe_circuit::papers::fig4;
    use awe_circuit::Waveform;

    #[test]
    fn single_pole_bounds_hold_and_are_tightish() {
        // v = V(1 - e^{-t/τ}): T_D = τ, m1' = V·τ².
        use awe_circuit::{Circuit, GROUND};
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
            .unwrap();
        ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
        ckt.add_capacitor("C1", n1, GROUND, 1e-9).unwrap();
        let b = StepBounds::for_node(&ckt, n1).unwrap();
        let tau = 1e-6;
        assert!((b.elmore_delay() - tau).abs() < 1e-12);
        assert!((b.m1 - tau * tau).abs() < 1e-15);
        for i in 1..50 {
            let t = i as f64 * 0.2e-6;
            let exact = 1.0 - (-t / tau).exp();
            let floor = b.progress_floor(t);
            assert!(floor <= exact + 1e-12, "t={t}: floor {floor} vs {exact}");
        }
        // Ceiling brackets the true delay τ·ln2.
        let ceil = b.delay_ceiling(0.5).unwrap();
        assert!(ceil >= tau * 2f64.ln());
        assert!(ceil <= 2.0 * tau + 1e-12);
    }

    #[test]
    fn bounds_hold_on_fig4_vs_awe_exact() {
        let p = fig4(Waveform::step(0.0, 5.0));
        let b = StepBounds::for_node(&p.circuit, p.output).unwrap();
        let engine = AweEngine::new(&p.circuit).unwrap();
        let exact = engine.approximate(p.output, 4).unwrap(); // full order
        for i in 1..100 {
            let t = i as f64 * 1e-4;
            let envelope = b.voltage_envelope(t);
            let v = exact.eval(t);
            assert!(
                envelope <= v + 1e-9,
                "t={t}: envelope {envelope} exceeds response {v}"
            );
        }
        // Delay ceiling really is an upper bound on the measured delay.
        let d = exact.delay_50().unwrap();
        assert!(b.delay_ceiling(0.5).unwrap() >= d);
    }

    #[test]
    fn bounds_hold_on_random_trees() {
        for seed in [3u64, 77, 200] {
            let g = random_rc_tree(
                10,
                (10.0, 300.0),
                (0.1e-12, 0.5e-12),
                seed,
                Waveform::step(0.0, 1.0),
            );
            let b = StepBounds::for_node(&g.circuit, g.output).unwrap();
            let engine = AweEngine::new(&g.circuit).unwrap();
            let exact = engine.approximate(g.output, 6).unwrap();
            let horizon = exact.horizon();
            for i in 1..60 {
                let t = horizon * i as f64 / 60.0;
                assert!(
                    b.voltage_envelope(t) <= exact.eval(t) + 1e-9,
                    "seed {seed}, t={t}"
                );
            }
            let d = exact.delay_50().unwrap();
            assert!(b.delay_ceiling(0.5).unwrap() >= d, "seed {seed}");
        }
    }

    #[test]
    fn falling_edge_bounds() {
        let p = fig4(Waveform::step(5.0, 0.0));
        let b = StepBounds::for_node(&p.circuit, p.output).unwrap();
        assert!(b.swing < 0.0);
        assert!((b.v0 - 5.0).abs() < 1e-9);
        // Envelope is a ceiling for falling responses.
        let engine = AweEngine::new(&p.circuit).unwrap();
        let exact = engine.approximate(p.output, 4).unwrap();
        for i in 1..50 {
            let t = i as f64 * 2e-4;
            assert!(b.voltage_envelope(t) >= exact.eval(t) - 1e-9, "t={t}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let p = fig4(Waveform::dc(0.0));
        assert!(matches!(
            StepBounds::for_node(&p.circuit, p.output),
            Err(AweError::ZeroResponse)
        ));
        let b = StepBounds {
            swing: 1.0,
            v0: 0.0,
            m0: 1.0,
            m1: 1.0,
        };
        assert_eq!(b.delay_ceiling(1.0), None);
        assert_eq!(b.delay_ceiling(-0.1), None);
        assert_eq!(b.progress_floor(-1.0), 0.0);
    }

    #[test]
    fn non_tree_rejected() {
        use awe_circuit::papers::fig9;
        let p = fig9(Waveform::step(0.0, 5.0));
        assert!(StepBounds::for_node(&p.circuit, p.output).is_err());
    }
}
