//! # awe-serve
//!
//! The AWEsim analysis daemon: persistent named **sessions**, each
//! holding a parsed design and a warm [`awe_batch::BatchEngine`], driven
//! by a newline-delimited JSON protocol over stdio or TCP.
//!
//! The point of staying resident is the ECO loop. A timing run in an ECO
//! flow repeats over a design that is 99% unchanged; re-launching the
//! batch CLI re-parses and re-solves everything. A session instead
//! tracks, per net, the structural hash (result-cache key) and the
//! topology-only pattern key (symbolic-LU-cache key), classifies every
//! edit as value-only or topological, and invalidates exactly the stale
//! artifacts — so `analyze` after a value-only edit is a cache sweep
//! plus one numeric refactorization, with **zero** new symbolic
//! analyses, and the response's counters prove it (see
//! [`session`] for the invalidation rules).
//!
//! Protocol sketch (one JSON object per line, `id` echoed back):
//!
//! ```text
//! → {"id":1,"verb":"load_design","session":"cpu","deck":"* NET b\nV1 in 0 STEP 0 5\nR1 in out 1k\nC1 out 0 1p\n"}
//! ← {"id":1,"ok":true,"verb":"load_design","session":"cpu","nets":1,...}
//! → {"id":2,"verb":"eco","session":"cpu","ops":[{"op":"resize","net":"b","element":"R1","value":2000}]}
//! ← {"id":2,"ok":true,"verb":"eco","changes":[{"net":"b","class":"value"}],...}
//! → {"id":3,"verb":"analyze","session":"cpu"}
//! ← {"id":3,"ok":true,"verb":"analyze","solves":1,"new_symbolic":0,...}
//! ```
//!
//! Every malformed line — bad JSON, unknown verb, missing field — gets a
//! typed error response (`error.code`, `error.message`, the offending
//! net/line when identifiable) and the daemon keeps serving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eco;
pub mod json;
pub mod protocol;
pub mod server;
pub mod session;
pub mod telemetry;

pub use eco::EcoOp;
pub use json::Json;
pub use protocol::{DesignSource, ErrorCode, Request, RunOpts, ServeError};
pub use server::{
    handle_line, serve_lines, serve_metrics_endpoint, serve_tcp, FlightOptions, ServeOptions,
    ServeState,
};
pub use session::{AnalyzeSummary, EcoOutcome, NetChange, Session, SessionStats};
pub use telemetry::{render_prometheus, render_stats, DaemonGauges, Telemetry};
