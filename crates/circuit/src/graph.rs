//! Circuit graph: spanning trees and fundamental loops.
//!
//! Tree/link analysis (paper §IV) partitions the circuit's elements into a
//! *spanning tree* and *links*. The paper's normal tree preference — voltage
//! sources and resistors in the tree, capacitors and current sources as
//! links — makes the link-current solution trivial for RC trees (eq. (52))
//! and pinpoints exactly which variables require a real solve when the
//! steady state is inexplicit (§4.2: a resistor forced into the links).

use crate::element::{Element, NodeId, GROUND};
use crate::netlist::Circuit;

/// Priority class for spanning-tree construction (lower enters the tree
/// first). This is the classic *normal tree* ordering.
fn tree_priority(e: &Element) -> u8 {
    match e {
        Element::VoltageSource { .. } | Element::Vcvs { .. } | Element::Ccvs { .. } => 0,
        Element::Capacitor { .. } => 4,
        Element::Resistor { .. } => 1,
        Element::Inductor { .. } => 3,
        Element::CurrentSource { .. } | Element::Vccs { .. } | Element::Cccs { .. } => 5,
    }
}

/// A spanning tree over the circuit's nodes plus the resulting link set.
///
/// Tree edges are element indices into [`Circuit::elements`]; every node
/// reachable from ground has a parent entry describing how to walk toward
/// the root (ground).
#[derive(Clone, Debug)]
pub struct SpanningTree {
    /// Indices of elements chosen as tree branches.
    pub tree_edges: Vec<usize>,
    /// Indices of elements left as links.
    pub link_edges: Vec<usize>,
    /// `parent[n] = Some((parent_node, element_idx))` for each non-root
    /// node in the tree; `None` for the root (ground) and unreachable
    /// nodes.
    pub parent: Vec<Option<(NodeId, usize)>>,
    /// Depth of each node in the rooted tree (0 for ground; `usize::MAX`
    /// for unreachable nodes).
    pub depth: Vec<usize>,
}

impl SpanningTree {
    /// Builds a normal spanning tree for the circuit, rooted at ground.
    ///
    /// Elements enter in priority order (V, R, L, C, I); an element whose
    /// terminals are already connected becomes a link. For an RC tree this
    /// yields exactly the paper's Fig. 6 partition: sources + resistors as
    /// the tree, capacitors as links.
    pub fn build(circuit: &Circuit) -> SpanningTree {
        let n = circuit.num_nodes();
        let mut order: Vec<usize> = (0..circuit.elements().len()).collect();
        order.sort_by_key(|&i| (tree_priority(&circuit.elements()[i]), i));

        let mut parent_uf: Vec<usize> = (0..n).collect();
        fn find(uf: &mut [usize], mut x: usize) -> usize {
            while uf[x] != x {
                uf[x] = uf[uf[x]];
                x = uf[x];
            }
            x
        }

        let mut tree_edges = Vec::new();
        let mut link_edges = Vec::new();
        let mut adjacency: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n];

        for idx in order {
            let e = &circuit.elements()[idx];
            let (a, b) = e.terminals();
            if a == b {
                link_edges.push(idx);
                continue;
            }
            let (ra, rb) = (find(&mut parent_uf, a), find(&mut parent_uf, b));
            if ra == rb {
                link_edges.push(idx);
            } else {
                parent_uf[ra] = rb;
                tree_edges.push(idx);
                adjacency[a].push((b, idx));
                adjacency[b].push((a, idx));
            }
        }
        // Restore insertion order for deterministic downstream iteration.
        tree_edges.sort_unstable();
        link_edges.sort_unstable();

        // Root the tree at ground by BFS.
        let mut parent = vec![None; n];
        let mut depth = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        depth[GROUND] = 0;
        queue.push_back(GROUND);
        while let Some(u) = queue.pop_front() {
            for &(v, eidx) in &adjacency[u] {
                if depth[v] == usize::MAX {
                    depth[v] = depth[u] + 1;
                    parent[v] = Some((u, eidx));
                    queue.push_back(v);
                }
            }
        }

        SpanningTree {
            tree_edges,
            link_edges,
            parent,
            depth,
        }
    }

    /// `true` if every node is connected to ground through tree branches.
    pub fn is_connected(&self) -> bool {
        self.depth.iter().all(|&d| d != usize::MAX)
    }

    /// The tree path from `node` up to ground as a list of
    /// `(element_idx, from_node, to_node)` hops, starting at `node`.
    ///
    /// Returns an empty path for ground itself and for unreachable nodes.
    pub fn path_to_root(&self, node: NodeId) -> Vec<(usize, NodeId, NodeId)> {
        let mut path = Vec::new();
        let mut cur = node;
        while let Some((p, eidx)) = self.parent.get(cur).copied().flatten() {
            path.push((eidx, cur, p));
            cur = p;
        }
        path
    }

    /// The fundamental loop closed by a link element: the tree path
    /// connecting its two terminals. Each entry is
    /// `(element_idx, from_node, to_node)` walking from the link's first
    /// terminal to its second through the tree.
    ///
    /// Returns `None` if either terminal is unreachable from ground.
    pub fn fundamental_loop(
        &self,
        circuit: &Circuit,
        link_idx: usize,
    ) -> Option<Vec<(usize, NodeId, NodeId)>> {
        let (a, b) = circuit.elements()[link_idx].terminals();
        if self.depth.get(a).copied()? == usize::MAX || self.depth.get(b).copied()? == usize::MAX {
            return None;
        }
        // Walk both ends up to their common ancestor.
        let (mut ua, mut ub) = (a, b);
        let mut up_a: Vec<(usize, NodeId, NodeId)> = Vec::new();
        let mut up_b: Vec<(usize, NodeId, NodeId)> = Vec::new();
        while self.depth[ua] > self.depth[ub] {
            let (p, e) = self.parent[ua].expect("non-root has parent");
            up_a.push((e, ua, p));
            ua = p;
        }
        while self.depth[ub] > self.depth[ua] {
            let (p, e) = self.parent[ub].expect("non-root has parent");
            up_b.push((e, ub, p));
            ub = p;
        }
        while ua != ub {
            let (pa, ea) = self.parent[ua].expect("non-root has parent");
            up_a.push((ea, ua, pa));
            ua = pa;
            let (pb, eb) = self.parent[ub].expect("non-root has parent");
            up_b.push((eb, ub, pb));
            ub = pb;
        }
        // Path a → LCA, then LCA → b (reverse of b's upward walk).
        up_b.reverse();
        for hop in &mut up_b {
            std::mem::swap(&mut hop.1, &mut hop.2);
        }
        up_a.extend(up_b);
        Some(up_a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;
    use crate::waveform::Waveform;

    /// The paper's Fig. 4 tree shape.
    fn fig4_like() -> Circuit {
        let mut c = Circuit::new();
        let n_in = c.node("in");
        let (n1, n2, n3, n4) = (c.node("1"), c.node("2"), c.node("3"), c.node("4"));
        c.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 5.0))
            .unwrap();
        c.add_resistor("R1", n_in, n1, 1.0).unwrap();
        c.add_resistor("R2", n1, n2, 1.0).unwrap();
        c.add_resistor("R3", n1, n3, 1.0).unwrap();
        c.add_resistor("R4", n3, n4, 1.0).unwrap();
        for (name, node) in [("C1", n1), ("C2", n2), ("C3", n3), ("C4", n4)] {
            c.add_capacitor(name, node, GROUND, 1e-6).unwrap();
        }
        c
    }

    #[test]
    fn rc_tree_partition_matches_fig6() {
        let c = fig4_like();
        let st = SpanningTree::build(&c);
        assert!(st.is_connected());
        // Tree: V1 + R1..R4 (5 edges for 6 nodes); links: all caps.
        assert_eq!(st.tree_edges.len(), 5);
        assert_eq!(st.link_edges.len(), 4);
        for &l in &st.link_edges {
            assert_eq!(c.elements()[l].kind(), 'C');
        }
    }

    #[test]
    fn path_to_root_walks_resistor_chain() {
        let c = fig4_like();
        let st = SpanningTree::build(&c);
        let n4 = c.find_node("4").unwrap();
        let path = st.path_to_root(n4);
        // n4 → n3 → n1 → in → ground: 4 hops.
        assert_eq!(path.len(), 4);
        let names: Vec<&str> = path
            .iter()
            .map(|&(e, _, _)| c.elements()[e].name())
            .collect();
        assert_eq!(names, vec!["R4", "R3", "R1", "V1"]);
        assert!(st.path_to_root(GROUND).is_empty());
    }

    #[test]
    fn grounded_resistor_forces_link() {
        // Add R5 from n4 to ground: resistors + source now form a cycle,
        // so one conductive element must become a link (paper Fig. 10).
        let mut c = fig4_like();
        let n4 = c.find_node("4").unwrap();
        c.add_resistor("R5", n4, GROUND, 4.0).unwrap();
        let st = SpanningTree::build(&c);
        assert!(st.is_connected());
        let conductive_links: Vec<&str> = st
            .link_edges
            .iter()
            .map(|&l| c.elements()[l].name())
            .filter(|n| n.starts_with('R') || n.starts_with('V'))
            .collect();
        assert_eq!(conductive_links.len(), 1, "exactly one R/V link expected");
    }

    #[test]
    fn fundamental_loop_of_grounded_cap() {
        let c = fig4_like();
        let st = SpanningTree::build(&c);
        // C4's loop: n4 → R4 → n3 → R3 → n1 → R1 → in → V1 → ground.
        let c4 = c.elements().iter().position(|e| e.name() == "C4").unwrap();
        let lp = st.fundamental_loop(&c, c4).unwrap();
        let names: Vec<&str> = lp.iter().map(|&(e, _, _)| c.elements()[e].name()).collect();
        assert_eq!(names, vec!["R4", "R3", "R1", "V1"]);
        // Loop orientation: starts at C4's first terminal.
        let (a, _) = c.elements()[c4].terminals();
        assert_eq!(lp[0].1, a);
        assert_eq!(lp.last().unwrap().2, GROUND);
    }

    #[test]
    fn fundamental_loop_between_internal_nodes() {
        // Floating cap between n2 and n4: loop goes through the common
        // ancestor n1 without reaching ground.
        let mut c = fig4_like();
        let (n2, n4) = (c.find_node("2").unwrap(), c.find_node("4").unwrap());
        c.add_capacitor("C11", n2, n4, 1e-7).unwrap();
        let st = SpanningTree::build(&c);
        let c11 = c.elements().iter().position(|e| e.name() == "C11").unwrap();
        let lp = st.fundamental_loop(&c, c11).unwrap();
        let names: Vec<&str> = lp.iter().map(|&(e, _, _)| c.elements()[e].name()).collect();
        assert_eq!(names, vec!["R2", "R3", "R4"]);
        assert_eq!(lp[0].1, n2);
        assert_eq!(lp.last().unwrap().2, n4);
    }

    #[test]
    fn disconnected_node_detected() {
        let mut c = fig4_like();
        let orphan = c.node("orphan");
        let orphan2 = c.node("orphan2");
        c.add_capacitor("Cx", orphan, orphan2, 1e-9).unwrap();
        let st = SpanningTree::build(&c);
        // The floating pair is connected to itself but not to ground…
        // Cx joins them, so one of them roots the other; neither reaches
        // ground.
        assert!(!st.is_connected());
        assert!(st.path_to_root(orphan).is_empty());
    }

    #[test]
    fn priorities_prefer_sources_then_resistors() {
        // A resistor in parallel with a capacitor: the R must take the
        // tree edge, the C must be the link.
        let mut c = Circuit::new();
        let n1 = c.node("1");
        c.add_resistor("R1", n1, GROUND, 1.0).unwrap();
        c.add_capacitor("C1", n1, GROUND, 1e-6).unwrap();
        let st = SpanningTree::build(&c);
        assert_eq!(st.tree_edges.len(), 1);
        assert_eq!(c.elements()[st.tree_edges[0]].kind(), 'R');
        assert_eq!(c.elements()[st.link_edges[0]].kind(), 'C');
    }
}
