//! Real-coefficient polynomials.
//!
//! AWE's characteristic polynomial (paper eq. (25)) is built from the
//! moment-matrix solution `a₀ + a₁p⁻¹ + … + a_{q-1}p^{-q+1} + p^{-q} = 0`;
//! its roots are the *reciprocals* of the approximating poles. This module
//! provides the polynomial type those coefficients live in, plus the
//! arithmetic the residue and error machinery needs.

use std::fmt;

use crate::complex::Complex;

/// A polynomial with real coefficients, stored low-degree first:
/// `coeffs[k]` multiplies `xᵏ`.
///
/// The representation is kept *normalized*: trailing (highest-degree) zero
/// coefficients are stripped, so `degree()` is exact. The zero polynomial
/// is represented by an empty coefficient vector and reports degree 0.
///
/// # Examples
///
/// ```
/// use awe_numeric::Polynomial;
///
/// // 2 - 3x + x²  =  (x - 1)(x - 2)
/// let p = Polynomial::new(vec![2.0, -3.0, 1.0]);
/// assert_eq!(p.degree(), 2);
/// assert_eq!(p.eval(1.0), 0.0);
/// assert_eq!(p.eval(2.0), 0.0);
/// assert_eq!(p.eval(0.0), 2.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients, lowest degree first.
    /// Trailing zeros are stripped.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Polynomial { coeffs };
        p.normalize();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Polynomial::new(vec![c])
    }

    /// The monic polynomial with the given roots:
    /// `∏ (x - rᵢ)`.
    ///
    /// ```
    /// use awe_numeric::Polynomial;
    /// let p = Polynomial::from_roots(&[1.0, 2.0]);
    /// assert_eq!(p.coeffs(), &[2.0, -3.0, 1.0]);
    /// ```
    pub fn from_roots(roots: &[f64]) -> Self {
        let mut coeffs = vec![1.0];
        for &r in roots {
            // Multiply by (x - r).
            let mut next = vec![0.0; coeffs.len() + 1];
            for (k, &c) in coeffs.iter().enumerate() {
                next[k + 1] += c;
                next[k] -= r * c;
            }
            coeffs = next;
        }
        Polynomial::new(coeffs)
    }

    /// Builds the monic polynomial with the given *complex* roots, which
    /// must occur in conjugate pairs (within `tol`) so the product has real
    /// coefficients. Used to reconstruct the characteristic polynomial from
    /// pole sets during verification.
    ///
    /// # Panics
    ///
    /// Panics if the roots cannot be grouped into reals and conjugate pairs.
    pub fn from_conjugate_roots(roots: &[Complex], tol: f64) -> Self {
        let mut remaining: Vec<Complex> = roots.to_vec();
        let mut p = Polynomial::constant(1.0);
        while let Some(r) = remaining.pop() {
            if r.im.abs() <= tol * r.abs().max(1.0) {
                p = &p * &Polynomial::new(vec![-r.re, 1.0]);
            } else {
                // Find and remove the conjugate partner.
                let idx = remaining
                    .iter()
                    .position(|c| (*c - r.conj()).abs() <= tol * r.abs().max(1.0))
                    .expect("complex roots must come in conjugate pairs");
                remaining.swap_remove(idx);
                // (x - r)(x - r̄) = x² - 2·Re(r)·x + |r|².
                p = &p * &Polynomial::new(vec![r.norm_sqr(), -2.0 * r.re, 1.0]);
            }
        }
        p
    }

    fn normalize(&mut self) {
        while self.coeffs.last().is_some_and(|c| *c == 0.0) {
            self.coeffs.pop();
        }
    }

    /// Coefficients, lowest degree first (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree of the polynomial. The zero polynomial reports 0.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Leading (highest-degree) coefficient, or 0 for the zero polynomial.
    pub fn leading(&self) -> f64 {
        self.coeffs.last().copied().unwrap_or(0.0)
    }

    /// Horner evaluation at a real point.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Horner evaluation at a complex point.
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + c)
    }

    /// First derivative.
    ///
    /// ```
    /// use awe_numeric::Polynomial;
    /// let p = Polynomial::new(vec![1.0, 2.0, 3.0]); // 1 + 2x + 3x²
    /// assert_eq!(p.derivative().coeffs(), &[2.0, 6.0]);
    /// ```
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        Polynomial::new(
            self.coeffs[1..]
                .iter()
                .enumerate()
                .map(|(k, &c)| (k + 1) as f64 * c)
                .collect(),
        )
    }

    /// Returns the monic version (divides by the leading coefficient).
    ///
    /// Returns the zero polynomial unchanged.
    pub fn monic(&self) -> Polynomial {
        if self.is_zero() {
            return self.clone();
        }
        let l = self.leading();
        Polynomial::new(self.coeffs.iter().map(|c| c / l).collect())
    }

    /// Substitutes `x → k·x` (coefficient `cᵢ → cᵢ·kⁱ`). This is the
    /// polynomial-level form of AWE's frequency scaling (§3.5): scaling the
    /// moments by γ scales the reciprocal-pole variable by 1/γ.
    pub fn scale_variable(&self, k: f64) -> Polynomial {
        let mut pow = 1.0;
        Polynomial::new(
            self.coeffs
                .iter()
                .map(|&c| {
                    let v = c * pow;
                    pow *= k;
                    v
                })
                .collect(),
        )
    }

    /// Largest coefficient magnitude, useful for scaling heuristics.
    pub fn max_coeff_abs(&self) -> f64 {
        self.coeffs.iter().fold(0.0, |m, c| m.max(c.abs()))
    }
}

impl Default for Polynomial {
    fn default() -> Self {
        Polynomial::zero()
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            first = false;
            let a = c.abs();
            match k {
                0 => write!(f, "{a}")?,
                1 => write!(f, "{a}·x")?,
                _ => write!(f, "{a}·x^{k}")?,
            }
        }
        Ok(())
    }
}

impl std::ops::Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![0.0; n];
        for (k, &c) in self.coeffs.iter().enumerate() {
            out[k] += c;
        }
        for (k, &c) in rhs.coeffs.iter().enumerate() {
            out[k] += c;
        }
        Polynomial::new(out)
    }
}

impl std::ops::Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![0.0; n];
        for (k, &c) in self.coeffs.iter().enumerate() {
            out[k] += c;
        }
        for (k, &c) in rhs.coeffs.iter().enumerate() {
            out[k] -= c;
        }
        Polynomial::new(out)
    }
}

impl std::ops::Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: &Polynomial) -> Polynomial {
        if self.is_zero() || rhs.is_zero() {
            return Polynomial::zero();
        }
        let mut out = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_strips_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        assert!(Polynomial::new(vec![0.0, 0.0]).is_zero());
    }

    #[test]
    fn evaluation_real_and_complex() {
        let p = Polynomial::new(vec![1.0, -2.0, 1.0]); // (x-1)²
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(p.eval(3.0), 4.0);
        let z = Complex::new(1.0, 1.0);
        let v = p.eval_complex(z); // (z-1)² = (j)² = -1
        assert!((v - Complex::real(-1.0)).abs() < 1e-15);
    }

    #[test]
    fn from_roots_reconstructs() {
        let p = Polynomial::from_roots(&[-1.0, -2.0, -3.0]);
        assert_eq!(p.degree(), 3);
        for r in [-1.0, -2.0, -3.0] {
            assert!(p.eval(r).abs() < 1e-12);
        }
        assert_eq!(p.leading(), 1.0);
        assert_eq!(p.eval(0.0), 6.0); // (-(-1))·(-(-2))·(-(-3))
    }

    #[test]
    fn from_conjugate_roots_real_coeffs() {
        let roots = [
            Complex::new(-1.0, 2.0),
            Complex::new(-1.0, -2.0),
            Complex::real(-3.0),
        ];
        let p = Polynomial::from_conjugate_roots(&roots, 1e-12);
        assert_eq!(p.degree(), 3);
        for r in roots {
            assert!(p.eval_complex(r).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "conjugate pairs")]
    fn from_conjugate_roots_rejects_unpaired() {
        let _ = Polynomial::from_conjugate_roots(&[Complex::new(0.0, 1.0)], 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Polynomial::new(vec![1.0, 1.0]); // 1 + x
        let b = Polynomial::new(vec![-1.0, 1.0]); // -1 + x
        assert_eq!((&a + &b).coeffs(), &[0.0, 2.0]);
        assert_eq!((&a - &b).coeffs(), &[2.0]);
        assert_eq!((&a * &b).coeffs(), &[-1.0, 0.0, 1.0]); // x² - 1
        assert!((&a * &Polynomial::zero()).is_zero());
        // Cancellation normalizes degree.
        assert_eq!((&a - &a).degree(), 0);
        assert!((&a - &a).is_zero());
    }

    #[test]
    fn derivative_and_monic() {
        let p = Polynomial::new(vec![0.0, 0.0, 0.0, 2.0]); // 2x³
        assert_eq!(p.derivative().coeffs(), &[0.0, 0.0, 6.0]);
        assert_eq!(p.monic().coeffs(), &[0.0, 0.0, 0.0, 1.0]);
        assert!(Polynomial::zero().derivative().is_zero());
        assert!(Polynomial::zero().monic().is_zero());
        assert!(Polynomial::constant(5.0).derivative().is_zero());
    }

    #[test]
    fn scale_variable_moves_roots() {
        // p(x) with root r → p(kx) has root r/k.
        let p = Polynomial::from_roots(&[4.0]);
        let q = p.scale_variable(2.0);
        assert!(q.eval(2.0).abs() < 1e-12);
    }

    #[test]
    fn display() {
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]);
        assert_eq!(p.to_string(), "1 - 2·x + 3·x^2");
        assert_eq!(Polynomial::zero().to_string(), "0");
        assert_eq!(Polynomial::new(vec![-1.5]).to_string(), "-1.5");
    }
}
