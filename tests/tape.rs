//! Tape-replay equivalence and accounting: the multi-lane tape VM must be
//! bit-identical to the scalar solve path on every topology class the
//! verify fuzzer generates, at every lane width and lane position — and a
//! structure group must compile exactly one tape no matter how many
//! members ride it.

use proptest::prelude::*;

use awesim::batch::{BatchEngine, BatchOptions, BatchRun, Design, NetSpec, RunMetrics};
use awesim::circuit::{Circuit, Element};
use awesim::core::AweOptions;
use awesim::verify::{CaseParams, TopologyClass};

fn opts(use_tape: bool) -> BatchOptions {
    BatchOptions {
        threads: 1,
        use_tape,
        ..BatchOptions::default()
    }
}

/// Clones `base` with every R/C/L value scaled by a deterministic factor
/// near 1 (distinct per `salt`): same topology — same structure group —
/// different structural hash.
fn jittered(base: &Circuit, salt: u64) -> Circuit {
    let mut out = base.clone();
    let edits: Vec<(String, f64)> = base
        .elements()
        .iter()
        .filter_map(|e| match e {
            Element::Resistor { name, ohms, .. } => Some((name.clone(), *ohms)),
            Element::Capacitor { name, farads, .. } => Some((name.clone(), *farads)),
            Element::Inductor { name, henries, .. } => Some((name.clone(), *henries)),
            _ => None,
        })
        .collect();
    for (i, (name, value)) in edits.iter().enumerate() {
        // SplitMix64 keyed on (salt, element index) → factor in
        // [1 + 1e-4·(salt+1), …] so distinct salts never collide.
        let mut z = salt
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(i as u64)
            .wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let jitter = (z % 1000) as f64 / 1e5; // [0, 0.01)
        let factor = 1.0 + 1e-4 * (salt + 1) as f64 + jitter;
        out.set_value(name, value * factor).expect("jitter applies");
    }
    out
}

/// Asserts two runs agree bit-for-bit on every deterministic field.
fn assert_bit_identical(on: &BatchRun, off: &BatchRun) {
    assert_eq!(on.results.len(), off.results.len());
    for (a, b) in on.results.iter().zip(&off.results) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.hash, b.hash, "{}", a.name);
        assert_eq!(a.order, b.order, "{}", a.name);
        assert_eq!(a.escalations, b.escalations, "{}", a.name);
        assert_eq!(a.stable, b.stable, "{}", a.name);
        assert_eq!(a.rescued, b.rescued, "{}", a.name);
        assert_eq!(a.error, b.error, "{}", a.name);
        assert_eq!(
            a.error_estimate.map(f64::to_bits),
            b.error_estimate.map(f64::to_bits),
            "{}",
            a.name
        );
        assert_eq!(
            a.delay_50.map(f64::to_bits),
            b.delay_50.map(f64::to_bits),
            "{}",
            a.name
        );
        assert_eq!(
            a.final_value.to_bits(),
            b.final_value.to_bits(),
            "{}",
            a.name
        );
        let pa: Vec<(u64, u64)> = a
            .poles
            .iter()
            .map(|(r, i)| (r.to_bits(), i.to_bits()))
            .collect();
        let pb: Vec<(u64, u64)> = b
            .poles
            .iter()
            .map(|(r, i)| (r.to_bits(), i.to_bits()))
            .collect();
        assert_eq!(pa, pb, "{}", a.name);
    }
    assert_eq!(on.solves, off.solves);
    assert_eq!(on.cache_hits, off.cache_hits);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-identity across every fuzzer topology class, group sizes that
    /// exercise full lanes, partial lanes, and every lane position
    /// (1 member = scalar singleton, 4 = one full lane block, 5..6 =
    /// a full block plus a partial trailing block).
    #[test]
    fn tape_replay_bit_identical_to_scalar(
        index in 0u64..48,
        members in 1usize..=6,
        seed in 0u64..4,
    ) {
        let class = TopologyClass::ALL[(index % 4) as usize];
        let case = CaseParams::generate(class, seed, index).build();
        let nets: Vec<NetSpec> = (0..members)
            .map(|i| NetSpec {
                name: format!("m{i}"),
                circuit: jittered(&case.circuit, i as u64),
                output: case.output,
            })
            .collect();
        let design = Design::from_nets("prop-tape", nets);
        let on = BatchEngine::new().run(&design, &opts(true));
        let off = BatchEngine::new().run(&design, &opts(false));
        assert_bit_identical(&on, &off);
    }
}

/// Lane width 1: an ECO rerun re-solves a single member of an
/// already-patterned group, which replays a one-lane tape block — and
/// must reproduce the original result bit-for-bit.
#[test]
fn single_lane_eco_replay_is_bit_identical() {
    // 200 stages keeps the solves on the sparse path, so the group's
    // pattern is recorded and the ECO rerun can validate a sparse tape.
    let design = Design::synthetic_chains(12, 200, 3);
    let engine = BatchEngine::new();
    let first = engine.run(&design, &opts(true));
    assert_eq!(first.solves, 12);
    let victim = &first.results[7];
    assert!(victim.error.is_none(), "{:?}", victim.error);
    let (hash, name) = (victim.hash, victim.name.clone());
    let baseline = victim.clone();

    assert!(engine.invalidate_result(hash), "result was cached");
    let rerun = engine.run(&design, &opts(true));
    assert_eq!(rerun.solves, 1, "only the invalidated net re-solves");
    assert_eq!(rerun.cache_hits, 11);
    assert!(
        rerun.tape_replays >= 1,
        "a single-member group with a known pattern must replay the tape"
    );
    let redone = rerun
        .results
        .iter()
        .find(|r| r.name == name)
        .expect("net present");
    assert!(!redone.cache_hit);
    assert_eq!(redone.order, baseline.order);
    assert_eq!(
        redone.delay_50.map(f64::to_bits),
        baseline.delay_50.map(f64::to_bits)
    );
    assert_eq!(redone.final_value.to_bits(), baseline.final_value.to_bits());
    assert_eq!(redone.poles, baseline.poles);
}

/// Clones `base` with every R/C/L value scaled log-uniformly in
/// [1/spread, spread] (deterministic per `salt`): same topology, wildly
/// different time constants — which is what flips value-dependent
/// behavior like the partial-Padé rescue within one structure group.
fn scaled(base: &Circuit, salt: u64, spread: f64) -> Circuit {
    let mut out = base.clone();
    let edits: Vec<(String, f64)> = base
        .elements()
        .iter()
        .filter_map(|e| match e {
            Element::Resistor { name, ohms, .. } => Some((name.clone(), *ohms)),
            Element::Capacitor { name, farads, .. } => Some((name.clone(), *farads)),
            Element::Inductor { name, henries, .. } => Some((name.clone(), *henries)),
            _ => None,
        })
        .collect();
    for (i, (name, value)) in edits.iter().enumerate() {
        let mut z = salt
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(i as u64)
            .wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let u = (z % 10000) as f64 / 10000.0;
        out.set_value(name, value * spread.powf(2.0 * u - 1.0))
            .expect("scale applies");
    }
    out
}

/// One lane rescues, its neighbors don't: five value-scaled variants of
/// one fuzzer RC tree forced to q = 5, where exactly one member (lane 2
/// of the full lane block behind the donor) needs the partial-Padé
/// rescue — divergent *outcomes* inside one block must not leak across
/// lanes, and must match the scalar path bit-for-bit.
#[test]
fn rescue_in_one_lane_does_not_disturb_neighbors() {
    let case = CaseParams::generate(TopologyClass::RcTree, 0, 0).build();
    let nets: Vec<NetSpec> = (0..5)
        .map(|i| NetSpec {
            name: format!("tree{i}"),
            circuit: scaled(&case.circuit, i as u64, 10.0),
            output: case.output,
        })
        .collect();
    let design = Design::from_nets("rescue-lane", nets);
    let run_opts = |use_tape| BatchOptions {
        order: 5,
        awe: AweOptions {
            max_escalation: 0,
            ..AweOptions::default()
        },
        ..opts(use_tape)
    };
    let on = BatchEngine::new().run(&design, &run_opts(true));
    let off = BatchEngine::new().run(&design, &run_opts(false));
    assert_bit_identical(&on, &off);
    assert!(
        on.results[3].rescued,
        "the salt-3 member must take the rescue path"
    );
    let clean = on
        .results
        .iter()
        .enumerate()
        .filter(|(i, r)| *i != 3 && !r.rescued)
        .count();
    assert_eq!(clean, 4, "every other member must stay on the clean path");
    for r in &on.results {
        assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
        assert!(r.stable, "{}", r.name);
    }
}

/// Accounting: a 500-member structure group compiles exactly one tape,
/// replayed in fixed-size chunks, with the donor as the only scalar solve.
#[test]
fn five_hundred_member_group_compiles_one_tape() {
    let design = Design::synthetic_chains(500, 200, 11);
    let engine = BatchEngine::new();
    let run = engine.run(&design, &opts(true));
    assert_eq!(run.solves, 500);
    assert_eq!(run.tapes_compiled, 1, "one tape serves the whole group");
    assert_eq!(engine.tape_len(), 1);
    assert_eq!(
        run.pattern_hits, 499,
        "every non-donor member refactors against the shared pattern"
    );
    assert_eq!(run.scalar_fallbacks, 0);
    assert_eq!(
        run.tape_replays,
        499usize.div_ceil(8),
        "members are scheduled in fixed lane-chunk units"
    );
    let m = RunMetrics::of(&run);
    assert_eq!(m.tapes_compiled, 1);
    let occupancy = m.lane_occupancy.expect("lane blocks ran");
    assert!(occupancy > 0.95, "occupancy {occupancy}");
    for r in &run.results {
        assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
    }

    // A second run serves everything from the result cache: no new tape,
    // no replays.
    let rerun = engine.run(&design, &opts(true));
    assert_eq!(rerun.cache_hits, 500);
    assert_eq!(rerun.tapes_compiled, 0);
    assert_eq!(rerun.tape_replays, 0);
}
