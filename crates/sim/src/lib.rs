//! # awe-sim
//!
//! Reference validation substrate for the AWEsim workspace: a transient
//! simulator (the paper's SPICE2 comparator, substituted per DESIGN.md §4
//! — trapezoidal MNA integration with adaptive LTE control is exactly the
//! algorithm SPICE applies to linear circuits), exact-pole extraction for
//! the "actual" columns of Tables I and II, and waveform comparison
//! metrics.
//!
//! ## Example
//!
//! ```
//! use awe_circuit::{Circuit, Waveform, GROUND};
//! use awe_sim::{simulate, TransientOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ckt = Circuit::new();
//! let n_in = ckt.node("in");
//! let n1 = ckt.node("n1");
//! ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 5.0))?;
//! ckt.add_resistor("R1", n_in, n1, 1e3)?;
//! ckt.add_capacitor("C1", n1, GROUND, 1e-9)?;
//!
//! let result = simulate(&ckt, TransientOptions::new(12e-6))?;
//! let delay = result.delay_50(n1).expect("rising waveform");
//! assert!((delay - 1e-6 * 2.0f64.ln()).abs() < 2e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compare;
mod error;
mod poles;
mod transient;

pub use compare::{max_abs_vs_sim, relative_l2_vs_sim, CompareError};
pub use error::SimError;
pub use poles::exact_poles;
pub use transient::{simulate, Method, TransientOptions, TransientResult};
