//! Charge-sharing (dynamic-node droop) analysis — the paper's §5.2/§5.3
//! regime.
//!
//! A dynamic-logic stage precharges its output node high; when a pass
//! device opens, the stored charge redistributes into previously
//! discharged internal capacitance and the output *droops*. Whether the
//! droop crosses the receiver's threshold is a correctness question, and
//! a single Elmore number cannot answer it — the response is nonmonotone.
//! AWE with nonequilibrium initial conditions predicts the full droop
//! waveform, and the `m₀`-matching property makes the redistributed
//! charge exact at any order.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example charge_sharing
//! ```

use awesim::circuit::{Circuit, Waveform, GROUND};
use awesim::core::rational::zeros;
use awesim::core::AweEngine;
use awesim::sim::{relative_l2_vs_sim, simulate, TransientOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("dynamic node droop: precharged output vs. internal capacitance\n");
    println!("  Cint/Cout   droop floor [V]   AWE-3 floor [V]   sim floor [V]   err");

    for ratio in [0.1, 0.25, 0.5, 1.0] {
        let c_out = 50e-15;
        let c_int = c_out * ratio;

        // Precharged output (5 V) connects through the opened pass
        // device's on-resistance to an internal node at 0 V. A weak
        // keeper (large resistor to the rail) eventually restores the
        // level — the droop is the transient dip.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        let mid = ckt.node("mid");
        ckt.add_vsource("Vdd", vdd, GROUND, Waveform::dc(5.0))?;
        ckt.add_resistor("Rkeeper", vdd, out, 50e3)?;
        ckt.add_resistor("Rpass", out, mid, 500.0)?;
        ckt.add_capacitor_ic("Cout", out, GROUND, c_out, Some(5.0))?;
        ckt.add_capacitor_ic("Cint", mid, GROUND, c_int, Some(0.0))?;

        // Pure charge sharing predicts the instantaneous-redistribution
        // floor V·Cout/(Cout+Cint); the keeper then pulls back up.
        let floor_pred = 5.0 * c_out / (c_out + c_int);

        let engine = AweEngine::new(&ckt)?;
        let approx = engine.approximate(out, 3)?;
        let horizon = 5.0 * 500.0 * (c_out + c_int); // pass-device τ ×5
        let awe_floor = (0..4000)
            .map(|i| approx.eval(horizon * i as f64 / 4000.0))
            .fold(f64::INFINITY, f64::min);

        let sim = simulate(&ckt, TransientOptions::new(horizon))?;
        let sim_floor = sim
            .waveform(out)
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        let err = relative_l2_vs_sim(&sim, out, |t| approx.eval(t)).unwrap_or(f64::NAN);

        println!(
            "  {ratio:9.2}   {floor_pred:15.3}   {awe_floor:15.3}   {sim_floor:13.3}   {:.2} %",
            err * 100.0
        );
    }

    // The §5.2 signature in the reduced model: the initial condition
    // introduces a low-frequency zero.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let out = ckt.node("out");
    let mid = ckt.node("mid");
    ckt.add_vsource("Vdd", vdd, GROUND, Waveform::dc(5.0))?;
    ckt.add_resistor("Rkeeper", vdd, out, 50e3)?;
    ckt.add_resistor("Rpass", out, mid, 500.0)?;
    ckt.add_capacitor_ic("Cout", out, GROUND, 50e-15, Some(5.0))?;
    ckt.add_capacitor_ic("Cint", mid, GROUND, 25e-15, Some(0.0))?;
    let engine = AweEngine::new(&ckt)?;
    let approx = engine.approximate(out, 2)?;
    println!("\nreduced model at the output (order 2):");
    for p in approx.poles() {
        println!("  pole {:+.4e} rad/s", p.re);
    }
    for z in zeros(&approx.pieces[0].transient)? {
        println!("  zero {:+.4e} rad/s  (the §5.2 IC-induced zero)", z.re);
    }
    println!(
        "\nThe droop floor tracks the charge-sharing ratio Cout/(Cout+Cint);\n\
         the keeper recovery that follows is the slow pole, and the initial\n\
         condition shows up as a low-frequency zero in the reduced model —\n\
         the same mechanism behind the paper's Table I (IC column)."
    );
    Ok(())
}
