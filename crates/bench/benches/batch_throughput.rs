//! Batch engine throughput: full-design AWE over a 100k-net workload —
//! 50k small random RC trees in 500 structure groups of 100 members plus
//! 50k long RC chains in four sparse-path families — swept across worker
//! thread counts with the tape VM on and off.
//!
//! Besides the Criterion timings, the bench writes `BENCH_batch.json` at
//! the workspace root: nets/s, within-mode speedup-vs-1-thread, and the
//! requested/granted thread annotation per row, which is the artifact CI
//! and the README table consume. Thread counts are *requested*; the pool
//! grants at most the host's core count, and CI only enforces scaling
//! gates on rows whose grant matches the request.

use std::fmt::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use awe_batch::{BatchEngine, BatchOptions, Design, NetSpec};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn opts(threads: usize, use_tape: bool) -> BatchOptions {
    BatchOptions {
        threads,
        use_tape,
        ..BatchOptions::default()
    }
}

/// 50k dense-path nets (500 groups × 100 members) + 50k sparse-path
/// nets (four chain-length families × 12.5k members, every family above
/// the sparse threshold so the lane kernel and stamp programs engage).
/// `quick` shrinks the same shape to a few hundred nets for smoke runs.
fn workload(quick: bool) -> Design {
    let (groups, members, chains, stages) = if quick {
        (4, 25, 16, [40usize, 50, 60, 70])
    } else {
        (500, 100, 12500, [200usize, 225, 250, 275])
    };
    let mut nets: Vec<NetSpec> = Design::synthetic_groups(groups, members, 7).nets().to_vec();
    for (i, &s) in stages.iter().enumerate() {
        let family = Design::synthetic_chains(chains, s, 100 + i as u64);
        nets.extend(family.nets().iter().cloned().map(|mut n| {
            n.name = format!("s{s}-{}", n.name);
            n
        }));
    }
    let total = nets.len();
    Design::from_nets(format!("batch-{total}"), nets)
}

struct Row {
    mode: &'static str,
    requested: usize,
    granted: usize,
    nets_per_sec: f64,
}

fn bench_batch(c: &mut Criterion) {
    // Under `cargo test` the harness only smoke-runs each body once;
    // shrink the workload so the suite stays fast.
    let quick = std::env::args().any(|a| a == "--test");
    let design = workload(quick);
    let nets = design.nets().len();

    // Direct cold-cache measurement for the JSON artifact: a fresh engine
    // per run so neither the result cache nor a compiled tape carries
    // over, best-of-`reps` per (mode, thread count).
    let reps = if quick { 1 } else { 2 };
    let mut rows = Vec::new();
    for (mode, use_tape) in [("scalar", false), ("tape", true)] {
        for &t in &THREADS {
            let mut best = f64::MAX;
            let mut granted = 0;
            for _ in 0..reps {
                let engine = BatchEngine::new();
                let start = Instant::now();
                let run = engine.run(&design, &opts(t, use_tape));
                let secs = start.elapsed().as_secs_f64();
                assert_eq!(run.solves, nets, "cold cache must solve every net");
                best = best.min(secs);
                granted = run.pool.threads;
            }
            let nps = nets as f64 / best;
            println!("{mode} threads={t} (granted {granted}): {nps:.1} nets/s");
            rows.push(Row {
                mode,
                requested: t,
                granted,
                nets_per_sec: nps,
            });
        }
    }
    write_json(&rows, nets);

    // Criterion group on a 1k-net slice of the same shape so the timed
    // iterations stay tractable.
    let small = Design::synthetic(if quick { 64 } else { 1000 }, 42);
    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    for (label, use_tape) in [("tape", true), ("scalar", false)] {
        group.bench_with_input(BenchmarkId::new(label, 1), &use_tape, |b, &tape| {
            b.iter(|| {
                let engine = BatchEngine::new();
                black_box(engine.run(&small, &opts(1, tape)))
            })
        });
    }
    group.finish();
}

fn write_json(rows: &[Row], nets: usize) {
    let rate = |mode: &str, requested: usize| {
        rows.iter()
            .find(|r| r.mode == mode && r.requested == requested)
            .map_or(0.0, |r| r.nets_per_sec)
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"batch_throughput\",");
    let _ = writeln!(out, "  \"nets\": {nets},");
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    let tape_base = rate("tape", 1);
    let scalar_base = rate("scalar", 1);
    let _ = writeln!(
        out,
        "  \"tape_speedup_single_thread\": {:.2},",
        if scalar_base > 0.0 {
            tape_base / scalar_base
        } else {
            0.0
        }
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let base = rate(r.mode, 1);
        let capped = r.granted < r.requested;
        // A capped row never got the threads it asked for, so its
        // "speedup" would just restate the 1-thread rate. Mark the row
        // unmeasured and write a null instead of a fake 1.0×.
        let speedup = if capped || base <= 0.0 {
            String::from("null")
        } else {
            format!("{:.2}", r.nets_per_sec / base)
        };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"requested_threads\": {}, \"granted_threads\": {}, \
             \"capped\": {capped}, \"measured\": {}, \"nets_per_sec\": {:.1}, \
             \"speedup\": {speedup}}}{comma}",
            r.mode, r.requested, r.granted, !capped, r.nets_per_sec,
        );
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_batch
}
criterion_main!(benches);
