//! The batch engine: scheduling, the incremental-reanalysis cache, and
//! the per-net result/timing split.
//!
//! Results are split into [`NetResult`] (deterministic analysis outputs —
//! identical bytes for identical nets regardless of thread count or cache
//! state) and [`NetTiming`] (wall times, which are not). Reports that
//! must be byte-comparable across thread counts render only the former.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use awe::{AweApproximation, AweEngine, AweError, AweOptions, SharedSymbolic, StageTimings};
use awe_circuit::{Circuit, NodeId, ReduceOptions};
use awe_numeric::LANE_WIDTH;

use crate::design::{prepare_net, Design};
use crate::pool::{effective_threads, run_indexed, PoolStats};
use crate::tape::{self, GroupTape, TapeKind, TapeMember, WorkerArena};

/// Results served from the incremental cache without an AWE solve.
static CACHE_HITS: awe_obs::Counter = awe_obs::Counter::new("batch.cache_hits");
/// Solves that refactored against a shared symbolic LU pattern.
static PATTERN_HITS: awe_obs::Counter = awe_obs::Counter::new("batch.pattern_hits");
/// Full AWE solves performed (cache misses, donor presolves included).
static SOLVES: awe_obs::Counter = awe_obs::Counter::new("batch.solves");
/// Cached results dropped because an ECO edit made them stale.
static CACHE_INVALIDATIONS: awe_obs::Counter = awe_obs::Counter::new("batch.cache_invalidations");
/// Symbolic patterns dropped because their structure group emptied.
static PATTERN_INVALIDATIONS: awe_obs::Counter =
    awe_obs::Counter::new("batch.pattern_invalidations");

/// Sentinel worker index for work done on the caller thread before the
/// pool starts (the sequential donor-presolve pass).
pub const CALLER_WORKER: usize = usize::MAX;

/// Nets per scalar work unit: the pool's deques move whole batches of
/// tiny nets per lock transaction instead of individual ~100 µs jobs.
const SCALAR_CHUNK: usize = 16;
/// Members per dense-tape work unit.
const DENSE_CHUNK: usize = 16;
/// Members per sparse-tape work unit (two full lane blocks).
const SPARSE_CHUNK: usize = 2 * LANE_WIDTH;

/// Options for one batch run.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Requested AWE order in fixed-order mode.
    pub order: usize,
    /// Automatic order selection: escalate per net until the §3.4 error
    /// estimate drops below this target (overrides `order`).
    pub auto_target: Option<f64>,
    /// Order ceiling in automatic mode.
    pub max_order: usize,
    /// Per-solve AWE options.
    pub awe: AweOptions,
    /// RC-chain reduction pre-pass (off by default). When enabled, every
    /// net solves on its reduced rewrite; cache keys derive from the
    /// reduced topology plus the reduce config, so toggling this (or the
    /// tolerance) never serves results computed under another config.
    pub reduce: ReduceOptions,
    /// Compile structure groups to flat evaluation tapes and replay the
    /// members through the multi-lane VM (see [`GroupTape`]). Replay is
    /// bit-identical to the scalar path; `false` is the escape hatch.
    /// Automatic order selection ([`BatchOptions::auto_target`]) always
    /// takes the scalar path — it re-plans per net, so there is no
    /// group-uniform schedule to compile.
    pub use_tape: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 0,
            order: 2,
            auto_target: None,
            max_order: 8,
            awe: AweOptions::default(),
            reduce: ReduceOptions::default(),
            use_tape: true,
        }
    }
}

/// Deterministic analysis outputs for one net.
#[derive(Clone, Debug)]
pub struct NetResult {
    /// Net name.
    pub name: String,
    /// Structural hash (the cache key).
    pub hash: u64,
    /// Node count (including ground) of the circuit actually solved —
    /// the reduced rewrite's count when the reduction pre-pass ran.
    pub nodes: usize,
    /// Element count of the circuit actually solved.
    pub elements: usize,
    /// Order asked for (the starting order in automatic mode).
    pub requested_order: usize,
    /// Order actually used.
    pub order: usize,
    /// §3.3 order escalations performed beyond the requested/starting
    /// order (extra orders tried in automatic mode).
    pub escalations: usize,
    /// Whether every approximating pole was stable.
    pub stable: bool,
    /// Whether the model needed a partial-Padé rescue (one or more RHP or
    /// spurious poles discarded and the residues refit).
    pub rescued: bool,
    /// §3.4 relative error estimate, when computed.
    pub error_estimate: Option<f64>,
    /// 50 % delay of the observed response, when defined.
    pub delay_50: Option<f64>,
    /// Final value of the observed response.
    pub final_value: f64,
    /// Approximating poles as `(re, im)` pairs, dominant first.
    pub poles: Vec<(f64, f64)>,
    /// Whether this result came from the cache (no AWE solve performed).
    pub cache_hit: bool,
    /// Analysis failure, if the net could not be solved.
    pub error: Option<String>,
}

/// Wall times for one net (excluded from deterministic reports).
#[derive(Clone, Copy, Debug, Default)]
pub struct NetTiming {
    /// End-to-end latency of the net's job (cache lookup included).
    pub latency: Duration,
    /// Per-stage breakdown of the solve (zero on cache hits).
    pub stages: StageTimings,
    /// Pool worker that ran the job, or [`CALLER_WORKER`] for nets solved
    /// by the sequential donor-presolve pass on the caller thread. Stage
    /// times attributed to the same worker are serialized; across workers
    /// they overlap.
    pub worker: usize,
}

/// Everything one [`BatchEngine::run`] produced.
#[derive(Clone, Debug)]
pub struct BatchRun {
    /// Design name.
    pub design: String,
    /// Wall time spent parsing/generating the design.
    pub parse_time: Duration,
    /// End-to-end wall time of the run (scheduling included).
    pub wall: Duration,
    /// Per-net results, in design order.
    pub results: Vec<NetResult>,
    /// Per-net timings, in design order.
    pub timings: Vec<NetTiming>,
    /// Scheduler stats.
    pub pool: PoolStats,
    /// AWE solves actually performed (cache misses).
    pub solves: usize,
    /// Results served from the cache.
    pub cache_hits: usize,
    /// Solves that reused a cached symbolic LU pattern (numeric
    /// refactorization instead of a cold symbolic+numeric factor).
    pub pattern_hits: usize,
    /// Group tapes compiled this run (runs replaying a cached tape
    /// compile nothing).
    pub tapes_compiled: usize,
    /// Tape replay invocations (one per scheduled member block).
    pub tape_replays: usize,
    /// Multi-lane blocks executed through the sparse lane kernel.
    pub lane_blocks: usize,
    /// Live lanes summed over those blocks — the mean lane occupancy is
    /// `lane_lanes / (lane_blocks · LANE_WIDTH)`.
    pub lane_lanes: usize,
    /// Tape members that diverged from their block (failed lane
    /// refactorization, unknown-count mismatch, …) and finished on the
    /// scalar solve path instead.
    pub scalar_fallbacks: usize,
}

/// Concurrent batch analyzer with a persistent incremental-reanalysis
/// cache.
///
/// The cache is keyed by each net's [structural
/// hash](crate::design::structural_hash) and lives for the engine's
/// lifetime: re-running a design after an ECO edit re-solves only the
/// touched nets.
#[derive(Debug, Default)]
pub struct BatchEngine {
    cache: Mutex<HashMap<u64, NetResult>>,
    /// Symbolic LU patterns keyed by each net's topology-only
    /// [`pattern_key`](crate::design::pattern_key): structurally identical
    /// nets (same topology, any values) factor their elimination pattern
    /// exactly once, then refactor numerically.
    patterns: Mutex<HashMap<u64, SharedSymbolic>>,
    /// Compiled group tapes keyed by pattern key. Revalidated against the
    /// run's options and the pattern cache before reuse (a stale tape
    /// recompiles — compilation needs no donor and is cheap), so a
    /// single-member ECO re-run of a known group replays its tape.
    tapes: Mutex<HashMap<u64, Arc<GroupTape>>>,
    /// Per-worker tape-replay arenas, kept warm across runs.
    arenas: Mutex<Vec<WorkerArena>>,
}

impl BatchEngine {
    /// A batch engine with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached net count.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Cached symbolic-pattern count.
    pub fn pattern_len(&self) -> usize {
        self.patterns.lock().expect("pattern lock").len()
    }

    /// Drops all cached results, symbolic patterns, and compiled tapes.
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache lock").clear();
        self.patterns.lock().expect("pattern lock").clear();
        self.tapes.lock().expect("tape lock").clear();
    }

    /// Compiled-tape count.
    pub fn tape_len(&self) -> usize {
        self.tapes.lock().expect("tape lock").len()
    }

    /// Whether a result for this structural hash is cached.
    pub fn has_result(&self, hash: u64) -> bool {
        self.cache.lock().expect("cache lock").contains_key(&hash)
    }

    /// Whether a symbolic LU pattern for this topology key is cached.
    pub fn has_pattern(&self, key: u64) -> bool {
        self.patterns
            .lock()
            .expect("pattern lock")
            .contains_key(&key)
    }

    /// Drops the cached result for one structural hash (an ECO edit made
    /// it stale), returning whether an entry existed. The next run
    /// re-solves any net with that hash; untouched hashes keep hitting.
    pub fn invalidate_result(&self, hash: u64) -> bool {
        let evicted = self.cache.lock().expect("cache lock").remove(&hash);
        if evicted.is_some() {
            CACHE_INVALIDATIONS.incr();
        }
        evicted.is_some()
    }

    /// Drops the shared symbolic LU pattern for one topology key (every
    /// net of that structure group changed topology, so nothing will
    /// refactor against it again), returning whether an entry existed.
    /// The underlying analysis is `Arc`-shared: in-flight solves holding
    /// a clone are unaffected.
    pub fn invalidate_pattern(&self, key: u64) -> bool {
        let evicted = self.patterns.lock().expect("pattern lock").remove(&key);
        // A tape compiled against the dropped pattern can never validate
        // again; drop it with the pattern.
        self.tapes.lock().expect("tape lock").remove(&key);
        if evicted.is_some() {
            PATTERN_INVALIDATIONS.incr();
        }
        evicted.is_some()
    }

    /// Analyzes every net of `design`, fanning out across
    /// `opts.threads` workers. Results come back in design order
    /// regardless of scheduling; nets whose structural hash is already
    /// cached are served without an AWE solve.
    ///
    /// Scheduling is unit-based: structure-group members go to the pool
    /// as whole tape blocks (group × lane chunk) and the remaining nets
    /// as scalar batches, so the work-stealing deques move tens of nets
    /// per transaction instead of individual ~100 µs jobs.
    pub fn run(&self, design: &Design, opts: &BatchOptions) -> BatchRun {
        let start = Instant::now();

        // Parallel prepare: hashing and the optional reduction rewrite
        // are pure per-net work.
        let (prepared, _) = run_indexed(design.len(), opts.threads, |i, _| {
            prepare_net(&design.nets()[i], &opts.reduce)
        });

        // One pass under the cache lock classifies every net: snapshot
        // hit, duplicate of an earlier net this run (same structural
        // hash — it clones that net's result, exactly what a cache
        // lookup after the first solve would have served), or solve.
        // Group sizes count the not-yet-cached nets per pattern key for
        // the donor-presolve decision below.
        let mut plan: Vec<Plan> = Vec::with_capacity(design.len());
        let mut first_of_hash: HashMap<u64, usize> = HashMap::new();
        let mut group_size: HashMap<u64, usize> = HashMap::new();
        {
            let cache = self.cache.lock().expect("cache lock");
            for (i, pn) in prepared.iter().enumerate() {
                if let Some(r) = cache.get(&pn.hash) {
                    plan.push(Plan::Hit(Box::new(r.clone())));
                    continue;
                }
                *group_size.entry(pn.pattern).or_insert(0) += 1;
                match first_of_hash.get(&pn.hash) {
                    Some(&j) => plan.push(Plan::Dup(j)),
                    None => {
                        first_of_hash.insert(pn.hash, i);
                        plan.push(Plan::Solve);
                    }
                }
            }
        }

        // Deterministic pattern seeding: any group with at least two nets
        // that will actually solve gets its first such net (in design
        // order) solved *here*, sequentially, so the group's shared
        // symbolic pattern never depends on scheduling. That matters
        // because threshold pivoting is value-dependent — *which* net's
        // pivot order a group shares is observable in the last bits of
        // its siblings' factors, and batch results must stay
        // byte-identical across thread counts. Groups whose pattern is
        // already cached (an earlier run) skip straight to replay;
        // singleton groups pay nothing here.
        let mut presolves = 0usize;
        let mut donor_attempted: HashSet<u64> = HashSet::new();
        for i in 0..plan.len() {
            if !matches!(plan[i], Plan::Solve) {
                continue;
            }
            let pn = &prepared[i];
            if group_size.get(&pn.pattern).is_none_or(|&c| c < 2) {
                continue;
            }
            if self
                .patterns
                .lock()
                .expect("pattern lock")
                .contains_key(&pn.pattern)
            {
                continue;
            }
            // One donor attempt per group, whether or not it yields a
            // pattern (dense nets never do — their siblings then replay
            // the dense tape).
            group_size.remove(&pn.pattern);
            donor_attempted.insert(pn.pattern);
            let spec = &design.nets()[i];
            let t0 = Instant::now();
            let mut presolve_span = awe_obs::span("batch.presolve");
            presolve_span.note(i as f64, 0.0);
            presolves += 1;
            let (result, stages, pattern) = solve_net(
                &spec.name,
                pn.circuit(&spec.circuit),
                pn.output,
                pn.hash,
                opts,
                None,
            );
            drop(presolve_span);
            if let Some(p) = pattern {
                self.patterns
                    .lock()
                    .expect("pattern lock")
                    .insert(pn.pattern, p);
            }
            plan[i] = Plan::Done(Box::new((
                result,
                NetTiming {
                    latency: t0.elapsed(),
                    stages,
                    worker: CALLER_WORKER,
                },
            )));
        }

        // Pattern snapshot: presolve is done, so the only patterns that
        // can still appear this run come from singleton groups nobody
        // else shares — one lock, then lock-free reads from every
        // worker.
        let snapshot: HashMap<u64, SharedSymbolic> =
            self.patterns.lock().expect("pattern lock").clone();

        // Partition the remaining solves into work units.
        let tape_on = tape::tape_applicable(opts);
        let mut order_of_pattern: HashMap<u64, usize> = HashMap::new();
        let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
        for i in 0..plan.len() {
            if !matches!(plan[i], Plan::Solve) {
                continue;
            }
            let key = prepared[i].pattern;
            let gi = *order_of_pattern.entry(key).or_insert_with(|| {
                groups.push((key, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push(i);
        }
        let mut units: Vec<Unit> = Vec::new();
        let mut scalar_nets: Vec<usize> = Vec::new();
        let mut tapes_compiled = 0usize;
        for (key, members) in groups {
            let symbolic = snapshot.get(&key).cloned();
            // A tape applies when the group's shared pattern is known
            // (sparse replay — even for one member, e.g. an ECO re-run),
            // or when its donor solved this run and ended dense (the
            // members share its topology, so they will too).
            if !tape_on || (symbolic.is_none() && !donor_attempted.contains(&key)) {
                scalar_nets.extend(members);
                continue;
            }
            let tape = {
                let mut tapes = self.tapes.lock().expect("tape lock");
                let cached = tapes
                    .get(&key)
                    .filter(|t| {
                        t.matches(opts)
                            && match (&t.kind, &symbolic) {
                                (TapeKind::Sparse { symbolic: s }, Some(cur)) => {
                                    Arc::ptr_eq(s, cur)
                                }
                                (TapeKind::Dense, None) => true,
                                _ => false,
                            }
                    })
                    .cloned();
                match cached {
                    Some(t) => t,
                    None => {
                        tapes_compiled += 1;
                        // The first member stands in as the group's donor
                        // for stamp-program compilation (any member works:
                        // the program is topology-only and self-checks).
                        let donor = members
                            .first()
                            .map(|&i| prepared[i].circuit(&design.nets()[i].circuit));
                        let t = Arc::new(tape::compile(key, donor, symbolic, opts));
                        tapes.insert(key, t.clone());
                        t
                    }
                }
            };
            let chunk = match tape.kind {
                TapeKind::Sparse { .. } => SPARSE_CHUNK,
                TapeKind::Dense => DENSE_CHUNK,
            };
            units.extend(members.chunks(chunk).map(|c| Unit::Tape {
                tape: tape.clone(),
                members: c.to_vec(),
            }));
        }
        scalar_nets.sort_unstable();
        units.extend(
            scalar_nets
                .chunks(SCALAR_CHUNK)
                .map(|c| Unit::Scalar { nets: c.to_vec() }),
        );

        // Every worker owns one arena for the whole run, persisted on
        // the engine so a serve daemon's repeated runs keep their
        // buffers warm.
        let threads = effective_threads(opts.threads, units.len());
        let arenas: Vec<Mutex<WorkerArena>> = {
            let mut stored = self.arenas.lock().expect("arena lock");
            while stored.len() < threads {
                stored.push(WorkerArena::new());
            }
            stored.drain(..).map(Mutex::new).collect()
        };

        let (unit_outs, pool) = run_indexed(units.len(), opts.threads, |u, w| {
            let arena = &arenas[w % arenas.len()];
            match &units[u] {
                Unit::Tape { tape, members } => {
                    let tms: Vec<TapeMember<'_>> = members
                        .iter()
                        .map(|&i| {
                            let spec = &design.nets()[i];
                            let pn = &prepared[i];
                            TapeMember {
                                index: i,
                                name: &spec.name,
                                circuit: pn.circuit(&spec.circuit),
                                output: pn.output,
                                hash: pn.hash,
                            }
                        })
                        .collect();
                    let mut arena = arena.lock().expect("arena lock");
                    let (outcomes, stats) = tape::replay_block(tape, &tms, opts, &mut arena);
                    UnitOut {
                        items: outcomes
                            .into_iter()
                            .map(|o| Item {
                                index: o.index,
                                pattern: tape.pattern,
                                result: o.result,
                                timing: NetTiming {
                                    latency: o.latency,
                                    stages: o.stages,
                                    worker: w,
                                },
                                pattern_hit: o.pattern_hit,
                                new_pattern: o.new_pattern,
                                fallback: o.fallback,
                            })
                            .collect(),
                        replays: 1,
                        lane_blocks: stats.lane_blocks,
                        lane_lanes: stats.lane_lanes,
                    }
                }
                Unit::Scalar { nets } => {
                    let items = nets
                        .iter()
                        .map(|&i| {
                            let spec = &design.nets()[i];
                            let pn = &prepared[i];
                            let mut net_span = awe_obs::span("batch.net");
                            net_span.note(i as f64, w as f64);
                            let t0 = Instant::now();
                            let seed = snapshot.get(&pn.pattern);
                            let (result, stages, pattern) = solve_net(
                                &spec.name,
                                pn.circuit(&spec.circuit),
                                pn.output,
                                pn.hash,
                                opts,
                                seed,
                            );
                            // The engine kept the seeded Arc ⇔ the solve
                            // refactored against it; an unseeded sparse
                            // net records its fresh pattern for future
                            // runs.
                            let pattern_hit = matches!(
                                (seed, &pattern),
                                (Some(s), Some(p)) if Arc::ptr_eq(s, p)
                            );
                            let new_pattern = match (seed, pattern) {
                                (None, Some(p)) => Some(p),
                                _ => None,
                            };
                            Item {
                                index: i,
                                pattern: pn.pattern,
                                result,
                                timing: NetTiming {
                                    latency: t0.elapsed(),
                                    stages,
                                    worker: w,
                                },
                                pattern_hit,
                                new_pattern,
                                fallback: false,
                            }
                        })
                        .collect();
                    UnitOut {
                        items,
                        replays: 0,
                        lane_blocks: 0,
                        lane_lanes: 0,
                    }
                }
            }
        });

        // Give the arenas back for the next run.
        *self.arenas.lock().expect("arena lock") = arenas
            .into_iter()
            .map(|m| m.into_inner().expect("arena poisoned"))
            .collect();

        // Scatter results by design index and accumulate accounting.
        let n = design.len();
        let mut results: Vec<Option<NetResult>> = (0..n).map(|_| None).collect();
        let mut timings: Vec<NetTiming> = vec![NetTiming::default(); n];
        let mut solves = presolves;
        let mut pattern_hits = 0usize;
        let mut scalar_fallbacks = 0usize;
        let mut tape_replays = 0usize;
        let mut lane_blocks = 0usize;
        let mut lane_lanes = 0usize;
        let mut new_patterns: Vec<(u64, SharedSymbolic)> = Vec::new();
        for out in unit_outs {
            tape_replays += out.replays;
            lane_blocks += out.lane_blocks;
            lane_lanes += out.lane_lanes;
            for item in out.items {
                solves += 1;
                pattern_hits += usize::from(item.pattern_hit);
                scalar_fallbacks += usize::from(item.fallback);
                if let Some(p) = item.new_pattern {
                    new_patterns.push((item.pattern, p));
                }
                timings[item.index] = item.timing;
                results[item.index] = Some(item.result);
            }
        }
        let mut cache_hits = 0usize;
        let mut dups: Vec<(usize, usize)> = Vec::new();
        let mut to_cache: Vec<usize> = Vec::new();
        for (i, p) in plan.into_iter().enumerate() {
            match p {
                Plan::Hit(mut r) => {
                    cache_hits += 1;
                    r.name.clone_from(&design.nets()[i].name);
                    r.cache_hit = true;
                    results[i] = Some(*r);
                    timings[i] = NetTiming {
                        latency: Duration::ZERO,
                        stages: StageTimings::default(),
                        worker: CALLER_WORKER,
                    };
                }
                Plan::Dup(j) => dups.push((i, j)),
                Plan::Solve => to_cache.push(i),
                Plan::Done(boxed) => {
                    let (r, t) = *boxed;
                    results[i] = Some(r);
                    timings[i] = t;
                    to_cache.push(i);
                }
            }
        }
        for (i, j) in dups {
            let mut r = results[j].clone().expect("dup source resolved");
            cache_hits += 1;
            r.name.clone_from(&design.nets()[i].name);
            r.cache_hit = true;
            results[i] = Some(r);
            timings[i] = NetTiming {
                latency: Duration::ZERO,
                stages: StageTimings::default(),
                worker: CALLER_WORKER,
            };
        }
        SOLVES.add(solves as u64);
        CACHE_HITS.add(cache_hits as u64);
        PATTERN_HITS.add(pattern_hits as u64);

        // Batched cache/pattern insertion: one lock each at the end of
        // the run instead of one per net.
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for i in to_cache {
                let r = results[i].as_ref().expect("solved net resolved");
                cache.insert(prepared[i].hash, r.clone());
            }
        }
        if !new_patterns.is_empty() {
            let mut pats = self.patterns.lock().expect("pattern lock");
            for (key, p) in new_patterns {
                pats.entry(key).or_insert(p);
            }
        }

        BatchRun {
            design: design.name.clone(),
            parse_time: design.parse_time,
            wall: start.elapsed(),
            results: results
                .into_iter()
                .map(|r| r.expect("every net resolved"))
                .collect(),
            timings,
            pool,
            solves,
            cache_hits,
            pattern_hits,
            tapes_compiled,
            tape_replays,
            lane_blocks,
            lane_lanes,
            scalar_fallbacks,
        }
    }
}

/// Per-net disposition after the cache pass.
enum Plan {
    /// Served from the cache snapshot.
    Hit(Box<NetResult>),
    /// Same structural hash as an earlier net this run; clones its result.
    Dup(usize),
    /// Needs a solve (scheduled unless promoted to `Done` by presolve).
    Solve,
    /// Solved by the sequential donor presolve on the caller thread.
    Done(Box<(NetResult, NetTiming)>),
}

/// One pool job: a whole batch of nets scheduled as a unit.
enum Unit {
    /// Replay `members` (design indices) of one group tape.
    Tape {
        tape: Arc<GroupTape>,
        members: Vec<usize>,
    },
    /// Scalar solves for nets with no applicable tape.
    Scalar { nets: Vec<usize> },
}

/// Scatter record for one scheduled net.
struct Item {
    index: usize,
    pattern: u64,
    result: NetResult,
    timing: NetTiming,
    pattern_hit: bool,
    new_pattern: Option<SharedSymbolic>,
    fallback: bool,
}

/// What one work unit produced.
struct UnitOut {
    items: Vec<Item>,
    replays: usize,
    lane_blocks: usize,
    lane_lanes: usize,
}

/// One full AWE solve of a net, with stage times. A `seed` pattern is
/// handed to the AWE engine so the factorization can skip its symbolic
/// analysis; the pattern the engine ends up with (the seed if the
/// refactorization succeeded, a freshly analysed one otherwise, `None` on
/// the dense path) is returned for the caches.
pub(crate) fn solve_net(
    name: &str,
    circuit: &Circuit,
    output: NodeId,
    hash: u64,
    opts: &BatchOptions,
    seed: Option<&SharedSymbolic>,
) -> (NetResult, StageTimings, Option<SharedSymbolic>) {
    let requested = if opts.auto_target.is_some() {
        1
    } else {
        opts.order
    };
    let mut result = blank_result(name, hash, circuit, requested);
    let engine = match AweEngine::new(circuit) {
        Ok(e) => e,
        Err(e) => {
            result.error = Some(e.to_string());
            return (result, StageTimings::default(), None);
        }
    };
    engine.set_factor_pattern(seed.cloned());
    let mut stages = StageTimings {
        mna: engine.assembly_time(),
        ..StageTimings::default()
    };

    let outcome = match opts.auto_target {
        None => match engine.approximate_timed(output, opts.order, opts.awe) {
            Ok((approx, clock)) => {
                accumulate(&mut stages, &clock);
                result.escalations = approx.order.saturating_sub(opts.order);
                Ok(approx)
            }
            Err(e) => Err(e),
        },
        Some(target) => auto_solve(&engine, output, target, opts, &mut stages, &mut result),
    };
    match outcome {
        Ok(approx) => fill_result(&mut result, &approx),
        Err(e) => result.error = Some(e.to_string()),
    }
    let pattern = engine.factor_pattern();
    (result, stages, pattern)
}

/// Automatic order selection with stage-time accounting: the
/// [`AweEngine::approximate_auto`] policy, inlined so every reduction's
/// wall time lands in `stages`. Mirrors the engine's trust gates: only
/// stable, well-conditioned models are candidates, the §3.4 early stop
/// additionally requires the moment-tail check, and when no order meets
/// the target the highest trusted order wins (un-rescued preferred).
fn auto_solve(
    engine: &AweEngine,
    output: NodeId,
    target: f64,
    opts: &BatchOptions,
    stages: &mut StageTimings,
    result: &mut NetResult,
) -> Result<AweApproximation, AweError> {
    let per_order = AweOptions {
        max_escalation: 0,
        ..opts.awe
    };
    let mut best_clean: Option<AweApproximation> = None;
    let mut best_rescued: Option<AweApproximation> = None;
    let mut tried = 0usize;
    for q in 1..=opts.max_order.max(1) {
        match engine.approximate_timed(output, q, per_order) {
            Ok((approx, clock)) => {
                accumulate(stages, &clock);
                tried += 1;
                if !approx.trusted() {
                    continue;
                }
                let done = approx.tail_converged()
                    && target > 0.0
                    && approx.error_estimate.is_some_and(|e| e <= target);
                if done {
                    result.escalations = tried.saturating_sub(1);
                    return Ok(approx);
                }
                if approx.discarded == 0 {
                    best_clean = Some(approx);
                } else {
                    best_rescued = Some(approx);
                }
            }
            // True system order reached; stop escalating.
            Err(AweError::MomentMatrixSingular { .. }) => break,
            Err(e) => return Err(e),
        }
    }
    result.escalations = tried.saturating_sub(1);
    best_clean.or(best_rescued).ok_or(AweError::Unstable {
        order: opts.max_order,
    })
}

fn accumulate(stages: &mut StageTimings, clock: &StageTimings) {
    stages.factor += clock.factor;
    stages.refactor += clock.refactor;
    stages.moments += clock.moments;
    stages.pade += clock.pade;
    stages.residues += clock.residues;
}

/// The pre-solve result skeleton for one net: everything known before
/// analysis, error and approximation fields blank.
pub(crate) fn blank_result(
    name: &str,
    hash: u64,
    circuit: &Circuit,
    requested: usize,
) -> NetResult {
    NetResult {
        name: name.to_owned(),
        hash,
        nodes: circuit.num_nodes(),
        elements: circuit.elements().len(),
        requested_order: requested,
        order: 0,
        escalations: 0,
        stable: false,
        rescued: false,
        error_estimate: None,
        delay_50: None,
        final_value: 0.0,
        poles: Vec::new(),
        cache_hit: false,
        error: None,
    }
}

/// Copies a delivered approximation's observables into a result row.
pub(crate) fn fill_result(result: &mut NetResult, approx: &AweApproximation) {
    result.order = approx.order;
    result.stable = approx.stable;
    result.rescued = approx.discarded > 0;
    result.error_estimate = approx.error_estimate;
    result.delay_50 = approx.delay_50();
    result.final_value = approx.final_value();
    result.poles = approx.poles().iter().map(|p| (p.re, p.im)).collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;

    #[test]
    fn run_solves_all_nets_in_order() {
        let design = Design::synthetic(20, 7);
        let engine = BatchEngine::new();
        let run = engine.run(&design, &BatchOptions::default());
        assert_eq!(run.results.len(), 20);
        assert_eq!(run.solves, 20);
        assert_eq!(run.cache_hits, 0);
        for (net, r) in design.nets().iter().zip(&run.results) {
            assert_eq!(net.name, r.name);
            assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
            assert!(r.stable);
            assert!(r.delay_50.is_some());
        }
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let design = Design::synthetic(8, 3);
        let engine = BatchEngine::new();
        let first = engine.run(&design, &BatchOptions::default());
        assert_eq!(first.solves, 8);
        let second = engine.run(&design, &BatchOptions::default());
        assert_eq!(second.solves, 0);
        assert_eq!(second.cache_hits, 8);
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.order, b.order);
            assert_eq!(a.delay_50, b.delay_50);
            assert!(b.cache_hit);
        }
    }

    #[test]
    fn eco_edit_recomputes_only_touched_net() {
        let mut design = Design::synthetic(6, 11);
        let engine = BatchEngine::new();
        engine.run(&design, &BatchOptions::default());
        let replacement = Design::synthetic(1, 999).nets()[0].clone();
        assert!(design.replace_net("net0003", replacement.circuit, replacement.output));
        let rerun = engine.run(&design, &BatchOptions::default());
        assert_eq!(rerun.solves, 1, "only the edited net re-solves");
        assert_eq!(rerun.cache_hits, 5);
        assert!(!rerun.results[2].cache_hit);
    }

    #[test]
    fn invalidation_forces_reanalysis() {
        // 200 stages ≈ 202 unknowns: past the sparse-path threshold, so
        // the group shares a cached symbolic pattern.
        let design = Design::synthetic_chains(4, 200, 5);
        let engine = BatchEngine::new();
        engine.run(&design, &BatchOptions::default());
        assert_eq!(engine.cache_len(), 4);
        assert_eq!(engine.pattern_len(), 1);

        let hash = design.nets()[2].hash();
        let key = design.nets()[2].pattern_key();
        assert!(engine.has_result(hash));
        assert!(engine.invalidate_result(hash));
        assert!(!engine.has_result(hash));
        assert!(!engine.invalidate_result(hash), "second evict is a no-op");

        // Re-run: only the evicted net solves, and it refactors against
        // the still-cached group pattern (no new symbolic analysis).
        let rerun = engine.run(&design, &BatchOptions::default());
        assert_eq!(rerun.solves, 1);
        assert_eq!(rerun.cache_hits, 3);
        assert_eq!(rerun.pattern_hits, 1);

        assert!(engine.has_pattern(key));
        assert!(engine.invalidate_pattern(key));
        assert!(!engine.has_pattern(key));
        assert!(!engine.invalidate_pattern(key));
    }

    #[test]
    fn reduction_shrinks_systems_and_never_crosses_caches() {
        let design = Design::synthetic_chains(3, 300, 9);
        let engine = BatchEngine::new();
        let full = engine.run(&design, &BatchOptions::default());
        assert_eq!(full.solves, 3);

        // Same design, reduction on: the cache keys are salted with the
        // reduce config, so nothing cross-serves.
        let ropts = BatchOptions {
            reduce: ReduceOptions {
                enabled: true,
                tolerance: 0.02,
            },
            ..BatchOptions::default()
        };
        let reduced = engine.run(&design, &ropts);
        assert_eq!(reduced.cache_hits, 0, "toggle never serves stale results");
        assert_eq!(reduced.solves, 3);
        for (f, r) in full.results.iter().zip(&reduced.results) {
            assert!(
                r.nodes * 5 < f.nodes,
                "{}: {} vs {} nodes",
                r.name,
                r.nodes,
                f.nodes
            );
            let (df, dr) = (f.delay_50.unwrap(), r.delay_50.unwrap());
            assert!(
                ((dr - df) / df).abs() < 0.05,
                "{}: delay {df} vs {dr}",
                r.name
            );
        }

        // Re-running with reduction on is pure cache; a different
        // tolerance re-keys again.
        let again = engine.run(&design, &ropts);
        assert_eq!(again.solves, 0);
        assert_eq!(again.cache_hits, 3);
        let other_tol = BatchOptions {
            reduce: ReduceOptions {
                enabled: true,
                tolerance: 0.01,
            },
            ..BatchOptions::default()
        };
        let rekeyed = engine.run(&design, &other_tol);
        assert_eq!(rekeyed.cache_hits, 0, "tolerance is part of the key");
    }

    #[test]
    fn auto_mode_meets_target() {
        let design = Design::synthetic(5, 21);
        let engine = BatchEngine::new();
        let run = engine.run(
            &design,
            &BatchOptions {
                auto_target: Some(0.01),
                ..BatchOptions::default()
            },
        );
        for r in &run.results {
            assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
            assert!(
                r.error_estimate.is_none_or(|e| e <= 0.01) || r.order == 8,
                "{}: err {:?} at order {}",
                r.name,
                r.error_estimate,
                r.order
            );
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let design = Design::synthetic(24, 5);
        let runs: Vec<BatchRun> = [1usize, 4]
            .iter()
            .map(|&t| {
                BatchEngine::new().run(
                    &design,
                    &BatchOptions {
                        threads: t,
                        ..BatchOptions::default()
                    },
                )
            })
            .collect();
        for (a, b) in runs[0].results.iter().zip(&runs[1].results) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.hash, b.hash);
            assert_eq!(a.order, b.order);
            assert_eq!(a.delay_50, b.delay_50);
            assert_eq!(a.poles, b.poles);
        }
    }
}
