//! Complex arithmetic for pole/residue computations.
//!
//! AWE's approximating poles and residues (eqs. (14)–(15) of the paper) are
//! in general complex, so every downstream computation — root finding,
//! Vandermonde solves, waveform evaluation — is carried out over [`Complex`].
//! This module provides a small, self-contained `f64` complex type rather
//! than pulling in an external dependency.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + im·j` over `f64`.
///
/// # Examples
///
/// ```
/// use awe_numeric::Complex;
///
/// let p = Complex::new(-1.0, 2.0);
/// let q = p.conj();
/// assert_eq!((p * q).im, 0.0);
/// assert_eq!((p * q).re, p.norm_sqr());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The imaginary unit `j`.
pub const J: Complex = Complex { re: 0.0, im: 1.0 };

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = J;

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    ///
    /// ```
    /// use awe_numeric::Complex;
    /// assert_eq!(Complex::real(3.0), Complex::new(3.0, 0.0));
    /// ```
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{jθ}`.
    ///
    /// ```
    /// use awe_numeric::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15);
    /// assert!((z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`, computed without intermediate overflow via `hypot`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value if `z` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        // Smith's algorithm: scale by the larger component to avoid
        // overflow/underflow of norm_sqr for extreme magnitudes.
        if self.re.abs() >= self.im.abs() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            Complex::new(1.0 / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            Complex::new(r / d, -1.0 / d)
        }
    }

    /// Principal square root.
    ///
    /// ```
    /// use awe_numeric::Complex;
    /// let z = Complex::new(-4.0, 0.0).sqrt();
    /// assert!((z - Complex::new(0.0, 2.0)).abs() < 1e-15);
    /// ```
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Complex::ZERO;
        }
        let m = self.abs();
        let re = ((m + self.re) / 2.0).sqrt();
        let im = ((m - self.re) / 2.0).sqrt();
        Complex::new(re, if self.im >= 0.0 { im } else { -im })
    }

    /// Complex exponential `e^z`.
    ///
    /// This is the workhorse of waveform evaluation: each AWE term is
    /// `k·e^{p·t}` with complex `k`, `p` (paper eq. (15)).
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Complex::new(self.abs().ln(), self.arg())
    }

    /// Raises to an integer power by repeated squaring.
    ///
    /// ```
    /// use awe_numeric::Complex;
    /// let z = Complex::new(0.0, 1.0);
    /// assert!((z.powi(4) - Complex::ONE).abs() < 1e-15);
    /// assert!((z.powi(-1) - Complex::new(0.0, -1.0)).abs() < 1e-15);
    /// ```
    pub fn powi(self, n: i32) -> Self {
        if n < 0 {
            return self.recip().powi(-n);
        }
        let mut base = self;
        let mut exp = n as u32;
        let mut acc = Complex::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Raises to a real power via the polar form.
    pub fn powf(self, x: f64) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return if x == 0.0 {
                Complex::ONE
            } else {
                Complex::ZERO
            };
        }
        Complex::from_polar(self.abs().powf(x), self.arg() * x)
    }

    /// `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// `true` when either part is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` when the imaginary part is negligible relative to the
    /// magnitude (or absolutely, for tiny numbers).
    ///
    /// Pole/residue post-processing uses this to snap nearly-real roots of
    /// the characteristic polynomial (paper eq. (25)) back onto the real
    /// axis.
    #[inline]
    pub fn is_approx_real(self, tol: f64) -> bool {
        self.im.abs() <= tol * self.abs().max(1.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}-{}j", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        rhs + self
    }
}

impl Sub<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self - rhs.re, -rhs.im)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        rhs.recip().scale(self)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn construction_and_accessors() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(Complex::real(2.0), Complex::from(2.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b - b, a);
        assert!(close(a * b / b, a, 1e-14));
        assert_eq!(-(-a), a);
        assert_eq!(a - a, Complex::ZERO);
    }

    #[test]
    fn mixed_real_ops() {
        let a = Complex::new(2.0, 1.0);
        assert_eq!(a + 1.0, Complex::new(3.0, 1.0));
        assert_eq!(1.0 + a, Complex::new(3.0, 1.0));
        assert_eq!(a - 1.0, Complex::new(1.0, 1.0));
        assert_eq!(1.0 - a, Complex::new(-1.0, -1.0));
        assert_eq!(a * 2.0, Complex::new(4.0, 2.0));
        assert_eq!(2.0 * a, Complex::new(4.0, 2.0));
        assert_eq!(a / 2.0, Complex::new(1.0, 0.5));
        assert!(close(1.0 / a, a.recip(), 1e-15));
    }

    #[test]
    fn recip_extreme_magnitudes() {
        // Smith's algorithm must survive components near the overflow edge.
        let z = Complex::new(1e300, 1e300);
        let r = z.recip();
        assert!(r.is_finite());
        assert!(close(z * r, Complex::ONE, 1e-12));

        let tiny = Complex::new(1e-300, -1e-300);
        let r = tiny.recip();
        assert!(r.is_finite());
        assert!(close(tiny * r, Complex::ONE, 1e-12));
    }

    #[test]
    fn sqrt_branches() {
        assert!(close(Complex::real(4.0).sqrt(), Complex::real(2.0), 1e-15));
        assert!(close(
            Complex::real(-9.0).sqrt(),
            Complex::new(0.0, 3.0),
            1e-15
        ));
        let z = Complex::new(3.0, -4.0);
        let s = z.sqrt();
        assert!(close(s * s, z, 1e-13));
        // Principal branch: non-negative real part.
        assert!(s.re >= 0.0);
        assert_eq!(Complex::ZERO.sqrt(), Complex::ZERO);
    }

    #[test]
    fn exp_ln_roundtrip() {
        let z = Complex::new(0.3, -1.2);
        assert!(close(z.exp().ln(), z, 1e-14));
        // Euler: e^{jπ} = -1
        let e = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!(close(e, Complex::real(-1.0), 1e-15));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(1.1, -0.7);
        let mut acc = Complex::ONE;
        for n in 0..8 {
            assert!(close(z.powi(n), acc, 1e-12 * acc.abs().max(1.0)));
            acc *= z;
        }
        assert!(close(z.powi(-3) * z.powi(3), Complex::ONE, 1e-13));
        assert_eq!(Complex::ZERO.powi(0), Complex::ONE);
    }

    #[test]
    fn powf_consistency() {
        let z = Complex::new(2.0, 2.0);
        assert!(close(z.powf(2.0), z * z, 1e-12));
        assert!(close(z.powf(0.5), z.sqrt(), 1e-13));
        assert_eq!(Complex::ZERO.powf(2.0), Complex::ZERO);
        assert_eq!(Complex::ZERO.powf(0.0), Complex::ONE);
    }

    #[test]
    fn approx_real_detection() {
        assert!(Complex::new(1.0, 1e-12).is_approx_real(1e-9));
        assert!(!Complex::new(1.0, 1e-3).is_approx_real(1e-9));
        // Relative: a huge pole with proportionally tiny imaginary part.
        assert!(Complex::new(1e12, 1.0).is_approx_real(1e-9));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
        assert_eq!(Complex::real(3.5).to_string(), "3.5");
    }

    #[test]
    fn sums_and_products() {
        let v = [Complex::ONE, J, Complex::new(2.0, -1.0)];
        let s: Complex = v.iter().copied().sum();
        assert_eq!(s, Complex::new(3.0, 0.0));
        let p: Complex = v.iter().copied().product();
        assert_eq!(p, J * Complex::new(2.0, -1.0));
    }

    #[test]
    fn nan_and_finite_flags() {
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex::ONE.is_nan());
        assert!(Complex::ONE.is_finite());
        assert!(!Complex::new(f64::INFINITY, 0.0).is_finite());
    }
}
