//! The two-pole baseline (paper §2.3, Chu & Horowitz, refs. 12 and 17).
//!
//! Before AWE, the state of the art beyond Elmore was a *two-pole* model
//! built from low-order transfer moments: the step response transfer
//! function is approximated by the all-pole form
//!
//! ```text
//! H(s) ≈ 1 / (1 + b₁·s + b₂·s²)
//! ```
//!
//! with `b₁ = -μ₁` and `b₂ = μ₁² - μ₂`, where `μ_j` are the transfer
//! moments. This is the `[0/2]` Padé, in contrast to AWE's `[q-1/q]`
//! partial-fraction form; it cannot match initial conditions (`m₋₁`) and
//! assumes a step input — both limitations §2.4 calls out and AWE lifts.

use awe_circuit::{Circuit, NodeId};
use awe_numeric::{roots, Polynomial};
use awe_treelink::TreeAnalysis;

use crate::error::AweError;
use crate::response::{AweApproximation, ResponsePiece};
use crate::terms::{ExpSum, ExpTerm};

/// The Horowitz-style two-pole step-response model at `node`.
///
/// Works on the R/C/V circuit class of the tree walk (meshes and grounded
/// resistors included).
///
/// # Errors
///
/// * Tree/link errors outside the R/C/V class.
/// * [`AweError::ZeroResponse`] if the node sees no transition.
/// * [`AweError::Unstable`] if the fitted denominator has right-half-plane
///   roots (the known failure mode of all-pole low-order fits on
///   nonmonotone responses — exactly why the paper generalizes).
pub fn two_pole_approximation(
    circuit: &Circuit,
    node: NodeId,
) -> Result<AweApproximation, AweError> {
    let ta = TreeAnalysis::new(circuit)?;
    let mut u0 = Vec::new();
    let mut jumps = Vec::new();
    for e in circuit.elements() {
        if let awe_circuit::Element::VoltageSource { waveform, .. } = e {
            u0.push(waveform.initial_value());
            jumps.push(waveform.final_value() - waveform.initial_value());
        }
    }
    let baseline = ta.dc(&u0)?;
    let m = ta.step_moments(&jumps, 4)?;
    let (m_m1, m0, m1) = (m[0][node], m[1][node], m[2][node]);
    if m_m1 == 0.0 {
        return Err(AweError::ZeroResponse);
    }
    // Transfer moments: μ₁ = m₀/m₋₁, μ₂ = m₁/m₋₁ (see the moment
    // convention notes in awe-mna).
    let mu1 = m0 / m_m1;
    let mu2 = m1 / m_m1;
    let b1 = -mu1;
    let b2 = mu1 * mu1 - mu2;
    // Poles: roots of b₂ s² + b₁ s + 1.
    let denom = Polynomial::new(vec![1.0, b1, b2]);
    let ps = roots(&denom)?;
    if ps.iter().any(|p| p.re >= 0.0) {
        return Err(AweError::Unstable { order: 2 });
    }
    // Step response of H: 1 + Σ kᵢ e^{pᵢ t} with
    // kᵢ = 1 / (pᵢ·(2 b₂ pᵢ + b₁)); scale by the swing -m₋₁.
    let swing = -m_m1;
    let terms: Vec<ExpTerm> = ps
        .iter()
        .map(|&p| {
            let k = (p * (p * (2.0 * b2) + b1)).recip();
            ExpTerm::simple(p, k * swing)
        })
        .collect();
    Ok(AweApproximation {
        order: 2,
        baseline: baseline[node],
        pieces: vec![ResponsePiece {
            onset: 0.0,
            a: swing,
            b: 0.0,
            transient: ExpSum::new(terms),
        }],
        error_estimate: None,
        condition: 1.0,
        stable: true,
        discarded: 0,
        moment_tail: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use awe_circuit::papers::fig4;
    use awe_circuit::{Waveform, GROUND};

    fn step5() -> Waveform {
        Waveform::step(0.0, 5.0)
    }

    #[test]
    fn single_pole_circuit_handled() {
        // For a true single-pole circuit the two-pole fit degenerates:
        // b₂ = μ₁² - μ₂ = τ² - τ² = 0 → denominator is linear and the
        // model reduces to the exact single exponential.
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, step5()).unwrap();
        ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
        ckt.add_capacitor("C1", n1, GROUND, 1e-9).unwrap();
        let tp = two_pole_approximation(&ckt, n1).unwrap();
        let tau: f64 = 1e-6;
        for &t in &[0.0, 1e-6, 3e-6] {
            let exact = 5.0 * (1.0 - (-t / tau).exp());
            assert!((tp.eval(t) - exact).abs() < 1e-9, "t = {t}");
        }
    }

    #[test]
    fn fig4_two_pole_beats_elmore() {
        use crate::accuracy::relative_l2_error;
        use crate::elmore::elmore_approximation;
        use crate::engine::AweEngine;
        // Reference: high-order AWE (order 4 is exact for Fig. 4).
        let p = fig4(step5());
        let engine = AweEngine::new(&p.circuit).unwrap();
        let exact = engine.approximate(p.output, 4).unwrap();
        let tp = two_pole_approximation(&p.circuit, p.output).unwrap();
        let pr = elmore_approximation(&p.circuit, p.output).unwrap();
        let e_tp = relative_l2_error(&exact.pieces[0].transient, &tp.pieces[0].transient).unwrap();
        let e_pr = relative_l2_error(&exact.pieces[0].transient, &pr.pieces[0].transient).unwrap();
        assert!(
            e_tp < e_pr,
            "two-pole ({e_tp}) should beat single-pole ({e_pr})"
        );
        assert!((tp.final_value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fig4_two_pole_matches_awe_order2_poles() {
        // The [0/2] fit and AWE's [1/2] fit see the same circuit; their
        // dominant poles should be close (not identical — different Padé).
        use crate::engine::AweEngine;
        let p = fig4(step5());
        let tp = two_pole_approximation(&p.circuit, p.output).unwrap();
        let engine = AweEngine::new(&p.circuit).unwrap();
        let a2 = engine.approximate(p.output, 2).unwrap();
        let dom_tp = tp.poles()[0].re;
        let dom_awe = a2.poles()[0].re;
        assert!(
            ((dom_tp - dom_awe) / dom_awe).abs() < 0.5,
            "{dom_tp} vs {dom_awe}"
        );
    }

    #[test]
    fn zero_response_detected() {
        // A node whose swing is zero (source never moves).
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, Waveform::dc(0.0))
            .unwrap();
        ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
        ckt.add_capacitor("C1", n1, GROUND, 1e-9).unwrap();
        assert!(matches!(
            two_pole_approximation(&ckt, n1),
            Err(AweError::ZeroResponse)
        ));
    }
}
