//! The batch engine: scheduling, the incremental-reanalysis cache, and
//! the per-net result/timing split.
//!
//! Results are split into [`NetResult`] (deterministic analysis outputs —
//! identical bytes for identical nets regardless of thread count or cache
//! state) and [`NetTiming`] (wall times, which are not). Reports that
//! must be byte-comparable across thread counts render only the former.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use awe::{AweApproximation, AweEngine, AweError, AweOptions, SharedSymbolic, StageTimings};
use awe_circuit::{Circuit, NodeId, ReduceOptions};

use crate::design::{prepare_net, Design, PreparedNet};
use crate::pool::{run_indexed, PoolStats};

/// Results served from the incremental cache without an AWE solve.
static CACHE_HITS: awe_obs::Counter = awe_obs::Counter::new("batch.cache_hits");
/// Solves that refactored against a shared symbolic LU pattern.
static PATTERN_HITS: awe_obs::Counter = awe_obs::Counter::new("batch.pattern_hits");
/// Full AWE solves performed (cache misses, donor presolves included).
static SOLVES: awe_obs::Counter = awe_obs::Counter::new("batch.solves");
/// Cached results dropped because an ECO edit made them stale.
static CACHE_INVALIDATIONS: awe_obs::Counter = awe_obs::Counter::new("batch.cache_invalidations");
/// Symbolic patterns dropped because their structure group emptied.
static PATTERN_INVALIDATIONS: awe_obs::Counter =
    awe_obs::Counter::new("batch.pattern_invalidations");

/// Sentinel worker index for work done on the caller thread before the
/// pool starts (the sequential donor-presolve pass).
pub const CALLER_WORKER: usize = usize::MAX;

/// Options for one batch run.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Requested AWE order in fixed-order mode.
    pub order: usize,
    /// Automatic order selection: escalate per net until the §3.4 error
    /// estimate drops below this target (overrides `order`).
    pub auto_target: Option<f64>,
    /// Order ceiling in automatic mode.
    pub max_order: usize,
    /// Per-solve AWE options.
    pub awe: AweOptions,
    /// RC-chain reduction pre-pass (off by default). When enabled, every
    /// net solves on its reduced rewrite; cache keys derive from the
    /// reduced topology plus the reduce config, so toggling this (or the
    /// tolerance) never serves results computed under another config.
    pub reduce: ReduceOptions,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 0,
            order: 2,
            auto_target: None,
            max_order: 8,
            awe: AweOptions::default(),
            reduce: ReduceOptions::default(),
        }
    }
}

/// Deterministic analysis outputs for one net.
#[derive(Clone, Debug)]
pub struct NetResult {
    /// Net name.
    pub name: String,
    /// Structural hash (the cache key).
    pub hash: u64,
    /// Node count (including ground) of the circuit actually solved —
    /// the reduced rewrite's count when the reduction pre-pass ran.
    pub nodes: usize,
    /// Element count of the circuit actually solved.
    pub elements: usize,
    /// Order asked for (the starting order in automatic mode).
    pub requested_order: usize,
    /// Order actually used.
    pub order: usize,
    /// §3.3 order escalations performed beyond the requested/starting
    /// order (extra orders tried in automatic mode).
    pub escalations: usize,
    /// Whether every approximating pole was stable.
    pub stable: bool,
    /// Whether the model needed a partial-Padé rescue (one or more RHP or
    /// spurious poles discarded and the residues refit).
    pub rescued: bool,
    /// §3.4 relative error estimate, when computed.
    pub error_estimate: Option<f64>,
    /// 50 % delay of the observed response, when defined.
    pub delay_50: Option<f64>,
    /// Final value of the observed response.
    pub final_value: f64,
    /// Approximating poles as `(re, im)` pairs, dominant first.
    pub poles: Vec<(f64, f64)>,
    /// Whether this result came from the cache (no AWE solve performed).
    pub cache_hit: bool,
    /// Analysis failure, if the net could not be solved.
    pub error: Option<String>,
}

/// Wall times for one net (excluded from deterministic reports).
#[derive(Clone, Copy, Debug, Default)]
pub struct NetTiming {
    /// End-to-end latency of the net's job (cache lookup included).
    pub latency: Duration,
    /// Per-stage breakdown of the solve (zero on cache hits).
    pub stages: StageTimings,
    /// Pool worker that ran the job, or [`CALLER_WORKER`] for nets solved
    /// by the sequential donor-presolve pass on the caller thread. Stage
    /// times attributed to the same worker are serialized; across workers
    /// they overlap.
    pub worker: usize,
}

/// Everything one [`BatchEngine::run`] produced.
#[derive(Clone, Debug)]
pub struct BatchRun {
    /// Design name.
    pub design: String,
    /// Wall time spent parsing/generating the design.
    pub parse_time: Duration,
    /// End-to-end wall time of the run (scheduling included).
    pub wall: Duration,
    /// Per-net results, in design order.
    pub results: Vec<NetResult>,
    /// Per-net timings, in design order.
    pub timings: Vec<NetTiming>,
    /// Scheduler stats.
    pub pool: PoolStats,
    /// AWE solves actually performed (cache misses).
    pub solves: usize,
    /// Results served from the cache.
    pub cache_hits: usize,
    /// Solves that reused a cached symbolic LU pattern (numeric
    /// refactorization instead of a cold symbolic+numeric factor).
    pub pattern_hits: usize,
}

/// Concurrent batch analyzer with a persistent incremental-reanalysis
/// cache.
///
/// The cache is keyed by each net's [structural
/// hash](crate::design::structural_hash) and lives for the engine's
/// lifetime: re-running a design after an ECO edit re-solves only the
/// touched nets.
#[derive(Debug, Default)]
pub struct BatchEngine {
    cache: Mutex<HashMap<u64, NetResult>>,
    /// Symbolic LU patterns keyed by each net's topology-only
    /// [`pattern_key`](crate::design::pattern_key): structurally identical
    /// nets (same topology, any values) factor their elimination pattern
    /// exactly once, then refactor numerically.
    patterns: Mutex<HashMap<u64, SharedSymbolic>>,
}

impl BatchEngine {
    /// A batch engine with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached net count.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Cached symbolic-pattern count.
    pub fn pattern_len(&self) -> usize {
        self.patterns.lock().expect("pattern lock").len()
    }

    /// Drops all cached results and symbolic patterns.
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache lock").clear();
        self.patterns.lock().expect("pattern lock").clear();
    }

    /// Whether a result for this structural hash is cached.
    pub fn has_result(&self, hash: u64) -> bool {
        self.cache.lock().expect("cache lock").contains_key(&hash)
    }

    /// Whether a symbolic LU pattern for this topology key is cached.
    pub fn has_pattern(&self, key: u64) -> bool {
        self.patterns
            .lock()
            .expect("pattern lock")
            .contains_key(&key)
    }

    /// Drops the cached result for one structural hash (an ECO edit made
    /// it stale), returning whether an entry existed. The next run
    /// re-solves any net with that hash; untouched hashes keep hitting.
    pub fn invalidate_result(&self, hash: u64) -> bool {
        let evicted = self.cache.lock().expect("cache lock").remove(&hash);
        if evicted.is_some() {
            CACHE_INVALIDATIONS.incr();
        }
        evicted.is_some()
    }

    /// Drops the shared symbolic LU pattern for one topology key (every
    /// net of that structure group changed topology, so nothing will
    /// refactor against it again), returning whether an entry existed.
    /// The underlying analysis is `Arc`-shared: in-flight solves holding
    /// a clone are unaffected.
    pub fn invalidate_pattern(&self, key: u64) -> bool {
        let evicted = self.patterns.lock().expect("pattern lock").remove(&key);
        if evicted.is_some() {
            PATTERN_INVALIDATIONS.incr();
        }
        evicted.is_some()
    }

    /// Analyzes every net of `design`, fanning out across
    /// `opts.threads` workers. Results come back in design order
    /// regardless of scheduling; nets whose structural hash is already
    /// cached are served without an AWE solve.
    pub fn run(&self, design: &Design, opts: &BatchOptions) -> BatchRun {
        let start = Instant::now();
        let solves = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        let pattern_hits = AtomicUsize::new(0);

        // Deterministic pattern seeding: nets group by their topology-only
        // pattern key; any group with at least two nets that will actually
        // solve gets its first such net (in design order) solved *here*,
        // sequentially, so the group's shared symbolic pattern never
        // depends on scheduling. That matters because threshold pivoting
        // is value-dependent — *which* net's pivot order a group shares is
        // observable in the last bits of its siblings' factors, and batch
        // results must stay byte-identical across thread counts. Groups
        // whose pattern is already cached (an earlier run) skip straight
        // to refactoring; singleton groups pay nothing here.
        let prepared: Vec<PreparedNet> = design
            .nets()
            .iter()
            .map(|spec| prepare_net(spec, &opts.reduce))
            .collect();
        let mut group_size: HashMap<u64, usize> = HashMap::new();
        {
            let cache = self.cache.lock().expect("cache lock");
            for p in &prepared {
                if !cache.contains_key(&p.hash) {
                    *group_size.entry(p.pattern).or_insert(0) += 1;
                }
            }
        }
        let presolved: Mutex<HashMap<usize, (NetResult, NetTiming)>> = Mutex::new(HashMap::new());
        for (i, spec) in design.nets().iter().enumerate() {
            let pn = &prepared[i];
            if group_size.get(&pn.pattern).is_none_or(|&c| c < 2) {
                continue;
            }
            if self
                .patterns
                .lock()
                .expect("pattern lock")
                .contains_key(&pn.pattern)
            {
                continue;
            }
            if self
                .cache
                .lock()
                .expect("cache lock")
                .contains_key(&pn.hash)
            {
                continue;
            }
            // One donor attempt per group, whether or not it yields a
            // pattern (dense nets never do — their siblings then factor
            // independently, which is the pre-split behavior).
            group_size.remove(&pn.pattern);
            let t0 = Instant::now();
            let mut presolve_span = awe_obs::span("batch.presolve");
            presolve_span.note(i as f64, 0.0);
            solves.fetch_add(1, Ordering::Relaxed);
            SOLVES.incr();
            let (result, stages, pattern) = solve_net(
                &spec.name,
                pn.circuit(&spec.circuit),
                pn.output,
                pn.hash,
                opts,
                None,
            );
            drop(presolve_span);
            if let Some(p) = pattern {
                self.patterns
                    .lock()
                    .expect("pattern lock")
                    .insert(pn.pattern, p);
            }
            self.cache
                .lock()
                .expect("cache lock")
                .insert(pn.hash, result.clone());
            presolved.lock().expect("presolve lock").insert(
                i,
                (
                    result,
                    NetTiming {
                        latency: t0.elapsed(),
                        stages,
                        worker: CALLER_WORKER,
                    },
                ),
            );
        }

        let (pairs, pool) = run_indexed(design.len(), opts.threads, |i, w| {
            let mut net_span = awe_obs::span("batch.net");
            net_span.note(i as f64, w as f64);
            if let Some(pair) = presolved.lock().expect("presolve lock").remove(&i) {
                return pair;
            }
            let spec = &design.nets()[i];
            let pn = &prepared[i];
            let hash = pn.hash;
            let t0 = Instant::now();
            let cached = self.cache.lock().expect("cache lock").get(&hash).cloned();
            if let Some(mut hit) = cached {
                hits.fetch_add(1, Ordering::Relaxed);
                CACHE_HITS.incr();
                hit.name.clone_from(&spec.name);
                hit.cache_hit = true;
                return (
                    hit,
                    NetTiming {
                        latency: t0.elapsed(),
                        stages: StageTimings::default(),
                        worker: w,
                    },
                );
            }
            solves.fetch_add(1, Ordering::Relaxed);
            SOLVES.incr();
            let seed = self
                .patterns
                .lock()
                .expect("pattern lock")
                .get(&pn.pattern)
                .cloned();
            let (result, stages, pattern) = solve_net(
                &spec.name,
                pn.circuit(&spec.circuit),
                pn.output,
                hash,
                opts,
                seed.as_ref(),
            );
            match (&seed, &pattern) {
                // The engine kept the seeded Arc ⇔ the solve refactored
                // against it (a cold fallback records a fresh analysis).
                (Some(s), Some(p)) if Arc::ptr_eq(s, p) => {
                    pattern_hits.fetch_add(1, Ordering::Relaxed);
                    PATTERN_HITS.incr();
                }
                // Unseeded sparse net: record its pattern for future runs
                // (ECO edits of this net refactor instead of re-analysing).
                (None, Some(p)) => {
                    self.patterns
                        .lock()
                        .expect("pattern lock")
                        .entry(pn.pattern)
                        .or_insert_with(|| p.clone());
                }
                _ => {}
            }
            self.cache
                .lock()
                .expect("cache lock")
                .insert(hash, result.clone());
            (
                result,
                NetTiming {
                    latency: t0.elapsed(),
                    stages,
                    worker: w,
                },
            )
        });
        let (results, timings) = pairs.into_iter().unzip();
        BatchRun {
            design: design.name.clone(),
            parse_time: design.parse_time,
            wall: start.elapsed(),
            results,
            timings,
            pool,
            solves: solves.into_inner(),
            cache_hits: hits.into_inner(),
            pattern_hits: pattern_hits.into_inner(),
        }
    }
}

/// One full AWE solve of a net, with stage times. A `seed` pattern is
/// handed to the AWE engine so the factorization can skip its symbolic
/// analysis; the pattern the engine ends up with (the seed if the
/// refactorization succeeded, a freshly analysed one otherwise, `None` on
/// the dense path) is returned for the caches.
fn solve_net(
    name: &str,
    circuit: &Circuit,
    output: NodeId,
    hash: u64,
    opts: &BatchOptions,
    seed: Option<&SharedSymbolic>,
) -> (NetResult, StageTimings, Option<SharedSymbolic>) {
    let requested = if opts.auto_target.is_some() {
        1
    } else {
        opts.order
    };
    let mut result = NetResult {
        name: name.to_owned(),
        hash,
        nodes: circuit.num_nodes(),
        elements: circuit.elements().len(),
        requested_order: requested,
        order: 0,
        escalations: 0,
        stable: false,
        rescued: false,
        error_estimate: None,
        delay_50: None,
        final_value: 0.0,
        poles: Vec::new(),
        cache_hit: false,
        error: None,
    };
    let engine = match AweEngine::new(circuit) {
        Ok(e) => e,
        Err(e) => {
            result.error = Some(e.to_string());
            return (result, StageTimings::default(), None);
        }
    };
    engine.set_factor_pattern(seed.cloned());
    let mut stages = StageTimings {
        mna: engine.assembly_time(),
        ..StageTimings::default()
    };

    let outcome = match opts.auto_target {
        None => match engine.approximate_timed(output, opts.order, opts.awe) {
            Ok((approx, clock)) => {
                accumulate(&mut stages, &clock);
                result.escalations = approx.order.saturating_sub(opts.order);
                Ok(approx)
            }
            Err(e) => Err(e),
        },
        Some(target) => auto_solve(&engine, output, target, opts, &mut stages, &mut result),
    };
    match outcome {
        Ok(approx) => fill(&mut result, &approx),
        Err(e) => result.error = Some(e.to_string()),
    }
    let pattern = engine.factor_pattern();
    (result, stages, pattern)
}

/// Automatic order selection with stage-time accounting: the
/// [`AweEngine::approximate_auto`] policy, inlined so every reduction's
/// wall time lands in `stages`. Mirrors the engine's trust gates: only
/// stable, well-conditioned models are candidates, the §3.4 early stop
/// additionally requires the moment-tail check, and when no order meets
/// the target the highest trusted order wins (un-rescued preferred).
fn auto_solve(
    engine: &AweEngine,
    output: NodeId,
    target: f64,
    opts: &BatchOptions,
    stages: &mut StageTimings,
    result: &mut NetResult,
) -> Result<AweApproximation, AweError> {
    let per_order = AweOptions {
        max_escalation: 0,
        ..opts.awe
    };
    let mut best_clean: Option<AweApproximation> = None;
    let mut best_rescued: Option<AweApproximation> = None;
    let mut tried = 0usize;
    for q in 1..=opts.max_order.max(1) {
        match engine.approximate_timed(output, q, per_order) {
            Ok((approx, clock)) => {
                accumulate(stages, &clock);
                tried += 1;
                if !approx.trusted() {
                    continue;
                }
                let done = approx.tail_converged()
                    && target > 0.0
                    && approx.error_estimate.is_some_and(|e| e <= target);
                if done {
                    result.escalations = tried.saturating_sub(1);
                    return Ok(approx);
                }
                if approx.discarded == 0 {
                    best_clean = Some(approx);
                } else {
                    best_rescued = Some(approx);
                }
            }
            // True system order reached; stop escalating.
            Err(AweError::MomentMatrixSingular { .. }) => break,
            Err(e) => return Err(e),
        }
    }
    result.escalations = tried.saturating_sub(1);
    best_clean.or(best_rescued).ok_or(AweError::Unstable {
        order: opts.max_order,
    })
}

fn accumulate(stages: &mut StageTimings, clock: &StageTimings) {
    stages.factor += clock.factor;
    stages.refactor += clock.refactor;
    stages.moments += clock.moments;
    stages.pade += clock.pade;
    stages.residues += clock.residues;
}

fn fill(result: &mut NetResult, approx: &AweApproximation) {
    result.order = approx.order;
    result.stable = approx.stable;
    result.rescued = approx.discarded > 0;
    result.error_estimate = approx.error_estimate;
    result.delay_50 = approx.delay_50();
    result.final_value = approx.final_value();
    result.poles = approx.poles().iter().map(|p| (p.re, p.im)).collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;

    #[test]
    fn run_solves_all_nets_in_order() {
        let design = Design::synthetic(20, 7);
        let engine = BatchEngine::new();
        let run = engine.run(&design, &BatchOptions::default());
        assert_eq!(run.results.len(), 20);
        assert_eq!(run.solves, 20);
        assert_eq!(run.cache_hits, 0);
        for (net, r) in design.nets().iter().zip(&run.results) {
            assert_eq!(net.name, r.name);
            assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
            assert!(r.stable);
            assert!(r.delay_50.is_some());
        }
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let design = Design::synthetic(8, 3);
        let engine = BatchEngine::new();
        let first = engine.run(&design, &BatchOptions::default());
        assert_eq!(first.solves, 8);
        let second = engine.run(&design, &BatchOptions::default());
        assert_eq!(second.solves, 0);
        assert_eq!(second.cache_hits, 8);
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.order, b.order);
            assert_eq!(a.delay_50, b.delay_50);
            assert!(b.cache_hit);
        }
    }

    #[test]
    fn eco_edit_recomputes_only_touched_net() {
        let mut design = Design::synthetic(6, 11);
        let engine = BatchEngine::new();
        engine.run(&design, &BatchOptions::default());
        let replacement = Design::synthetic(1, 999).nets()[0].clone();
        assert!(design.replace_net("net0003", replacement.circuit, replacement.output));
        let rerun = engine.run(&design, &BatchOptions::default());
        assert_eq!(rerun.solves, 1, "only the edited net re-solves");
        assert_eq!(rerun.cache_hits, 5);
        assert!(!rerun.results[2].cache_hit);
    }

    #[test]
    fn invalidation_forces_reanalysis() {
        // 200 stages ≈ 202 unknowns: past the sparse-path threshold, so
        // the group shares a cached symbolic pattern.
        let design = Design::synthetic_chains(4, 200, 5);
        let engine = BatchEngine::new();
        engine.run(&design, &BatchOptions::default());
        assert_eq!(engine.cache_len(), 4);
        assert_eq!(engine.pattern_len(), 1);

        let hash = design.nets()[2].hash();
        let key = design.nets()[2].pattern_key();
        assert!(engine.has_result(hash));
        assert!(engine.invalidate_result(hash));
        assert!(!engine.has_result(hash));
        assert!(!engine.invalidate_result(hash), "second evict is a no-op");

        // Re-run: only the evicted net solves, and it refactors against
        // the still-cached group pattern (no new symbolic analysis).
        let rerun = engine.run(&design, &BatchOptions::default());
        assert_eq!(rerun.solves, 1);
        assert_eq!(rerun.cache_hits, 3);
        assert_eq!(rerun.pattern_hits, 1);

        assert!(engine.has_pattern(key));
        assert!(engine.invalidate_pattern(key));
        assert!(!engine.has_pattern(key));
        assert!(!engine.invalidate_pattern(key));
    }

    #[test]
    fn reduction_shrinks_systems_and_never_crosses_caches() {
        let design = Design::synthetic_chains(3, 300, 9);
        let engine = BatchEngine::new();
        let full = engine.run(&design, &BatchOptions::default());
        assert_eq!(full.solves, 3);

        // Same design, reduction on: the cache keys are salted with the
        // reduce config, so nothing cross-serves.
        let ropts = BatchOptions {
            reduce: ReduceOptions {
                enabled: true,
                tolerance: 0.02,
            },
            ..BatchOptions::default()
        };
        let reduced = engine.run(&design, &ropts);
        assert_eq!(reduced.cache_hits, 0, "toggle never serves stale results");
        assert_eq!(reduced.solves, 3);
        for (f, r) in full.results.iter().zip(&reduced.results) {
            assert!(
                r.nodes * 5 < f.nodes,
                "{}: {} vs {} nodes",
                r.name,
                r.nodes,
                f.nodes
            );
            let (df, dr) = (f.delay_50.unwrap(), r.delay_50.unwrap());
            assert!(
                ((dr - df) / df).abs() < 0.05,
                "{}: delay {df} vs {dr}",
                r.name
            );
        }

        // Re-running with reduction on is pure cache; a different
        // tolerance re-keys again.
        let again = engine.run(&design, &ropts);
        assert_eq!(again.solves, 0);
        assert_eq!(again.cache_hits, 3);
        let other_tol = BatchOptions {
            reduce: ReduceOptions {
                enabled: true,
                tolerance: 0.01,
            },
            ..BatchOptions::default()
        };
        let rekeyed = engine.run(&design, &other_tol);
        assert_eq!(rekeyed.cache_hits, 0, "tolerance is part of the key");
    }

    #[test]
    fn auto_mode_meets_target() {
        let design = Design::synthetic(5, 21);
        let engine = BatchEngine::new();
        let run = engine.run(
            &design,
            &BatchOptions {
                auto_target: Some(0.01),
                ..BatchOptions::default()
            },
        );
        for r in &run.results {
            assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
            assert!(
                r.error_estimate.is_none_or(|e| e <= 0.01) || r.order == 8,
                "{}: err {:?} at order {}",
                r.name,
                r.error_estimate,
                r.order
            );
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let design = Design::synthetic(24, 5);
        let runs: Vec<BatchRun> = [1usize, 4]
            .iter()
            .map(|&t| {
                BatchEngine::new().run(
                    &design,
                    &BatchOptions {
                        threads: t,
                        ..BatchOptions::default()
                    },
                )
            })
            .collect();
        for (a, b) in runs[0].results.iter().zip(&runs[1].results) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.hash, b.hash);
            assert_eq!(a.order, b.order);
            assert_eq!(a.delay_50, b.delay_50);
            assert_eq!(a.poles, b.poles);
        }
    }
}
