//! Sparse LU factorization (left-looking Gilbert–Peierls with threshold
//! partial pivoting).
//!
//! This is the factorization that honors the paper's §3.2 cost model on
//! general circuits: MNA matrices carry only a few entries per row, and a
//! left-looking LU whose per-column work is proportional to the *actual*
//! fill — found by depth-first reachability instead of dense scans — keeps
//! both the one-time factorization and every moment resubstitution near
//! linear for tree- and mesh-like interconnect.

use crate::error::NumericError;
use crate::sparse::SparseMatrix;

const NONE: usize = usize::MAX;

/// Sparse LU factors `P·A·Q = L·U` with threshold partial pivoting.
///
/// `P` comes from the pivoting, `Q` is the caller-supplied (or identity)
/// column order — pass an RCM order from
/// [`SparseMatrix::rcm_ordering`] to keep fill low on circuit matrices.
///
/// # Examples
///
/// ```
/// use awe_numeric::{SparseLu, SparseMatrix};
///
/// # fn main() -> Result<(), awe_numeric::NumericError> {
/// let a = SparseMatrix::from_triplets(
///     2,
///     2,
///     &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)],
/// );
/// let lu = SparseLu::factor(&a, None)?;
/// let x = lu.solve(&[3.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SparseLu {
    n: usize,
    /// Column order: `q[k]` is the original column eliminated at step `k`.
    q: Vec<usize>,
    /// `prow[k]` = original row chosen as pivot at step `k`.
    prow: Vec<usize>,
    /// L columns (unit diagonal implicit): original row indices + values.
    l_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// U columns: entries at pivot positions `< k`, plus the diagonal
    /// stored separately in `u_diag`.
    u_ptr: Vec<usize>,
    u_pos: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
}

impl SparseLu {
    /// Factors a square sparse matrix. `col_order`, if given, lists the
    /// original columns in elimination order (length `n`, a permutation).
    ///
    /// Pivoting is threshold-based: the diagonal candidate is kept when
    /// its magnitude is within a factor 10 of the column maximum,
    /// trading a bounded growth factor for less fill.
    ///
    /// # Errors
    ///
    /// * [`NumericError::NotSquare`] for non-square input.
    /// * [`NumericError::DimensionMismatch`] for a bad `col_order` length.
    /// * [`NumericError::Singular`] when a column has no usable pivot.
    pub fn factor(a: &SparseMatrix, col_order: Option<&[usize]>) -> Result<SparseLu, NumericError> {
        if a.rows() != a.cols() {
            return Err(NumericError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let q: Vec<usize> = match col_order {
            Some(order) => {
                if order.len() != n {
                    return Err(NumericError::DimensionMismatch {
                        expected: n,
                        actual: order.len(),
                    });
                }
                order.to_vec()
            }
            None => (0..n).collect(),
        };

        let mut pinv = vec![NONE; n]; // original row → pivot position
        let mut prow = vec![NONE; n];
        let mut l_ptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_ptr = vec![0usize];
        let mut u_pos: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        let mut u_diag = vec![0.0f64; n];

        // Workspaces.
        let mut x = vec![0.0f64; n]; // dense accumulator over original rows
        let mut marked = vec![false; n]; // rows present in the pattern
        let mut pattern: Vec<usize> = Vec::new();
        let mut visited = vec![false; n]; // pivot positions seen by DFS
        let mut topo: Vec<usize> = Vec::new(); // post-order stack
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for k in 0..n {
            let j = q[k];
            // --- Symbolic: reachable pivot columns, topological order. ---
            topo.clear();
            let (a_rows, a_vals) = a.col(j);
            for &i in a_rows {
                let start = pinv[i];
                if start != NONE && !visited[start] {
                    // Iterative DFS with explicit (node, edge cursor).
                    dfs_stack.push((start, l_ptr[start]));
                    visited[start] = true;
                    while let Some(&mut (node, ref mut cursor)) = dfs_stack.last_mut() {
                        let end = l_ptr[node + 1];
                        let mut descended = false;
                        while *cursor < end {
                            let r = l_rows[*cursor];
                            *cursor += 1;
                            let m = pinv[r];
                            if m != NONE && !visited[m] {
                                visited[m] = true;
                                dfs_stack.push((m, l_ptr[m]));
                                descended = true;
                                break;
                            }
                        }
                        if !descended {
                            topo.push(node);
                            dfs_stack.pop();
                        }
                    }
                }
            }

            // --- Numeric: scatter A(:,j), apply updates in topo order. ---
            pattern.clear();
            for (&i, &v) in a_rows.iter().zip(a_vals) {
                x[i] = v;
                if !marked[i] {
                    marked[i] = true;
                    pattern.push(i);
                }
            }
            // topo holds post-order (dependencies later); process in
            // reverse so each column's multiplier is final before use.
            for &m in topo.iter().rev() {
                visited[m] = false; // reset for the next column
                let pr = prow[m];
                if !marked[pr] {
                    // Can happen only through exact cancellation upstream;
                    // the multiplier is then zero.
                    continue;
                }
                let xm = x[pr];
                if xm == 0.0 {
                    continue;
                }
                for idx in l_ptr[m]..l_ptr[m + 1] {
                    let r = l_rows[idx];
                    if !marked[r] {
                        marked[r] = true;
                        pattern.push(r);
                        x[r] = 0.0;
                    }
                    x[r] -= xm * l_vals[idx];
                }
            }

            // --- Pivot among non-pivotal pattern rows. ---
            let mut best = NONE;
            let mut best_mag = 0.0f64;
            let mut diag_mag = 0.0f64;
            for &i in &pattern {
                if pinv[i] == NONE {
                    let mag = x[i].abs();
                    if mag > best_mag {
                        best_mag = mag;
                        best = i;
                    }
                    if i == j {
                        diag_mag = mag;
                    }
                }
            }
            if best == NONE || best_mag == 0.0 {
                // Clean workspaces before reporting.
                for &i in &pattern {
                    x[i] = 0.0;
                    marked[i] = false;
                }
                return Err(NumericError::Singular { pivot: k });
            }
            // Threshold preference for the structural diagonal.
            let piv_row = if diag_mag >= 0.1 * best_mag { j } else { best };
            let piv_val = x[piv_row];

            // --- Emit U column k and L column k. ---
            for &i in &pattern {
                let pos = pinv[i];
                if pos != NONE {
                    if x[i] != 0.0 {
                        u_pos.push(pos);
                        u_vals.push(x[i]);
                    }
                } else if i != piv_row && x[i] != 0.0 {
                    l_rows.push(i);
                    l_vals.push(x[i] / piv_val);
                }
            }
            u_diag[k] = piv_val;
            u_ptr.push(u_pos.len());
            l_ptr.push(l_rows.len());
            pinv[piv_row] = k;
            prow[k] = piv_row;

            // Reset workspaces.
            for &i in &pattern {
                x[i] = 0.0;
                marked[i] = false;
            }
        }

        Ok(SparseLu {
            n,
            q,
            prow,
            l_ptr,
            l_rows,
            l_vals,
            u_ptr,
            u_pos,
            u_vals,
            u_diag,
        })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` plus `U` (a fill measure).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// Solves `A·x = b` by permuted forward/back substitution.
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
            });
        }
        // Forward: y = L⁻¹·P·b, working over original row indices.
        let mut w = b.to_vec();
        let mut y = vec![0.0f64; self.n];
        for k in 0..self.n {
            let t = w[self.prow[k]];
            y[k] = t;
            if t != 0.0 {
                for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                    w[self.l_rows[idx]] -= t * self.l_vals[idx];
                }
            }
        }
        // Back: z = U⁻¹·y (column-oriented).
        for k in (0..self.n).rev() {
            let zk = y[k] / self.u_diag[k];
            y[k] = zk;
            if zk != 0.0 {
                for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                    y[self.u_pos[idx]] -= zk * self.u_vals[idx];
                }
            }
        }
        // Undo the column permutation: x[q[k]] = z[k].
        let mut out = vec![0.0f64; self.n];
        for k in 0..self.n {
            out[self.q[k]] = y[k];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::Lu;
    use crate::matrix::Matrix;

    fn solve_both(d: &Matrix, b: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let dense = Lu::factor(d)
            .expect("dense factors")
            .solve(b)
            .expect("dense solves");
        let s = SparseMatrix::from_dense(d);
        let sparse = SparseLu::factor(&s, None)
            .expect("sparse factors")
            .solve(b)
            .expect("sparse solves");
        (dense, sparse)
    }

    #[test]
    fn matches_dense_on_small_systems() {
        let d = Matrix::from_rows(&[
            &[2.0, 1.0, 0.0, 0.0],
            &[1.0, 3.0, 1.0, 0.0],
            &[0.0, 1.0, 4.0, 2.0],
            &[0.0, 0.0, 2.0, 5.0],
        ]);
        let b = [1.0, -2.0, 3.0, 0.5];
        let (dense, sparse) = solve_both(&d, &b);
        for (a, s) in dense.iter().zip(&sparse) {
            assert!((a - s).abs() < 1e-12, "{a} vs {s}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // MNA-like: V-source branch rows have structural zero diagonals.
        let d = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 2.0], &[0.0, 2.0, 1.0]]);
        let b = [1.0, 2.0, 3.0];
        let (dense, sparse) = solve_both(&d, &b);
        for (a, s) in dense.iter().zip(&sparse) {
            assert!((a - s).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let s = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0)]);
        assert!(matches!(
            SparseLu::factor(&s, None),
            Err(NumericError::Singular { .. })
        ));
        // Empty column.
        let s2 = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 0.0)]);
        assert!(SparseLu::factor(&s2, None).is_err());
    }

    #[test]
    fn shape_and_order_validation() {
        let rect = SparseMatrix::from_triplets(2, 3, &[]);
        assert!(matches!(
            SparseLu::factor(&rect, None),
            Err(NumericError::NotSquare { .. })
        ));
        let sq = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        assert!(matches!(
            SparseLu::factor(&sq, Some(&[0])),
            Err(NumericError::DimensionMismatch { .. })
        ));
        let lu = SparseLu::factor(&sq, None).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn column_order_changes_nothing_numerically() {
        let d = Matrix::from_rows(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 5.0, 1.0, 0.0],
            &[0.0, 1.0, 6.0, 1.0],
            &[2.0, 0.0, 1.0, 7.0],
        ]);
        let s = SparseMatrix::from_dense(&d);
        let b = [1.0, 2.0, 3.0, 4.0];
        let natural = SparseLu::factor(&s, None).unwrap().solve(&b).unwrap();
        let reordered = SparseLu::factor(&s, Some(&[3, 1, 0, 2]))
            .unwrap()
            .solve(&b)
            .unwrap();
        for (a, c) in natural.iter().zip(&reordered) {
            assert!((a - c).abs() < 1e-12);
        }
    }

    #[test]
    fn random_sparse_systems_match_dense() {
        let mut state = 0xfeedbeefu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(97);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [3usize, 8, 20, 50] {
            // Sparse banded-ish pattern with random off-band entries and a
            // dominant-ish diagonal.
            let mut d = Matrix::zeros(n, n);
            for i in 0..n {
                d[(i, i)] = 4.0 + next();
                if i + 1 < n {
                    d[(i, i + 1)] = next();
                    d[(i + 1, i)] = next();
                }
                let far = (i * 7 + 3) % n;
                if far != i {
                    d[(i, far)] = next() * 0.5;
                }
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let (dense, sparse) = solve_both(&d, &b);
            for (a, s) in dense.iter().zip(&sparse) {
                assert!((a - s).abs() < 1e-9, "n={n}: {a} vs {s}");
            }
        }
    }

    #[test]
    fn rcm_ordering_cuts_fill_on_a_grid() {
        // 2-D grid Laplacian with scrambled numbering: RCM should reduce
        // factor fill versus the scrambled natural order.
        let (rows, cols) = (8usize, 8usize);
        let n = rows * cols;
        let scramble = |i: usize| (i * 37 + 11) % n;
        let mut t = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let u = scramble(r * cols + c);
                t.push((u, u, 4.0));
                if c + 1 < cols {
                    let v = scramble(r * cols + c + 1);
                    t.push((u, v, -1.0));
                    t.push((v, u, -1.0));
                }
                if r + 1 < rows {
                    let v = scramble((r + 1) * cols + c);
                    t.push((u, v, -1.0));
                    t.push((v, u, -1.0));
                }
            }
        }
        let s = SparseMatrix::from_triplets(n, n, &t);
        let natural = SparseLu::factor(&s, None).unwrap();
        let rcm_new_of_old = s.rcm_ordering().unwrap();
        // Column order = old columns sorted by new position.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&old| rcm_new_of_old[old]);
        let rcm = SparseLu::factor(&s, Some(&order)).unwrap();
        assert!(
            rcm.factor_nnz() < natural.factor_nnz(),
            "RCM fill {} should beat scrambled {}",
            rcm.factor_nnz(),
            natural.factor_nnz()
        );
        // And both solve correctly.
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let xa = natural.solve(&b).unwrap();
        let xb = rcm.solve(&b).unwrap();
        let ra = s.mul_vec(&xa);
        for ((p, q), bb) in ra.iter().zip(s.mul_vec(&xb)).zip(&b) {
            assert!((p - bb).abs() < 1e-9);
            assert!((q - bb).abs() < 1e-9);
        }
    }
}
