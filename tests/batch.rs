//! Integration tests for the batch subsystem: deterministic results
//! across thread counts, incremental-reanalysis cache behavior, the
//! structural-hash invariants, and the `awesim batch` CLI.

use std::process::Command;

use proptest::prelude::*;

use awesim::batch::{
    json_report, structural_hash, text_report, BatchEngine, BatchOptions, Design, RunMetrics,
};
use awesim::circuit::{Circuit, NodeId, Waveform, GROUND};

fn run_with(design: &Design, threads: usize) -> awesim::batch::BatchRun {
    BatchEngine::new().run(
        design,
        &BatchOptions {
            threads,
            ..BatchOptions::default()
        },
    )
}

/// The headline determinism guarantee: the timing-free report of a run is
/// byte-identical whether one worker or eight did the solving.
#[test]
fn reports_byte_identical_across_thread_counts() {
    let design = Design::synthetic(40, 17);
    let base_text = text_report(&run_with(&design, 1), false);
    let base_json = json_report(&run_with(&design, 1), false);
    for threads in [2, 8] {
        let run = run_with(&design, threads);
        assert_eq!(
            base_text,
            text_report(&run, false),
            "text report differs at {threads} threads"
        );
        assert_eq!(
            base_json,
            json_report(&run, false),
            "json report differs at {threads} threads"
        );
    }
}

/// Second run of an unchanged design: 100 % cache hits, zero AWE solves.
#[test]
fn unchanged_design_rerun_hits_cache_everywhere() {
    let design = Design::synthetic(15, 4);
    let engine = BatchEngine::new();
    let first = engine.run(&design, &BatchOptions::default());
    assert_eq!(first.solves, 15);
    assert_eq!(first.cache_hits, 0);

    let second = engine.run(&design, &BatchOptions::default());
    assert_eq!(second.solves, 0, "no AWE solve may run on a warm cache");
    assert_eq!(second.cache_hits, 15);
    assert!((RunMetrics::of(&second).hit_rate() - 1.0).abs() < 1e-12);
    // Cached results carry the same analysis outputs.
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(a.order, b.order);
        assert_eq!(a.delay_50, b.delay_50);
        assert_eq!(a.poles, b.poles);
        assert!(b.cache_hit);
    }
}

/// ECO flow: edit one net, re-run, and only that net is recomputed.
#[test]
fn eco_rerun_solves_only_touched_nets() {
    let mut design = Design::synthetic(10, 33);
    let engine = BatchEngine::new();
    engine.run(&design, &BatchOptions::default());

    let edited = Design::synthetic(1, 12345).nets()[0].clone();
    assert!(design.replace_net("net0007", edited.circuit, edited.output));
    let rerun = engine.run(&design, &BatchOptions::default());
    assert_eq!(rerun.solves, 1);
    assert_eq!(rerun.cache_hits, 9);
    assert!(!rerun.results[6].cache_hit, "the edited net must re-solve");
    assert!(rerun.results[5].cache_hit);
}

/// Parallel speedup where the hardware can show it. On single-core
/// runners the assertion degrades to "completes correctly".
#[test]
fn multithreaded_run_is_not_slower_where_cores_exist() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let design = Design::synthetic(300, 8);
    let t1 = std::time::Instant::now();
    let r1 = run_with(&design, 1);
    let d1 = t1.elapsed();
    let t4 = std::time::Instant::now();
    let r4 = run_with(&design, 4);
    let d4 = t4.elapsed();
    assert_eq!(r1.results.len(), 300);
    assert_eq!(r4.results.len(), 300);
    if cores >= 4 {
        // Loose bound (2x would be the bench target) to keep CI stable.
        assert!(
            d4.as_secs_f64() < d1.as_secs_f64() / 1.5,
            "expected parallel speedup on {cores} cores: 1 thread {d1:?}, 4 threads {d4:?}"
        );
    }
}

/// Builds a ladder circuit from `specs`, inserting the element cards
/// rotated by `rot` — same structure, different insertion (and node-id)
/// order.
fn ladder(specs: &[(usize, f64)], rot: usize) -> (Circuit, NodeId) {
    type Card = Box<dyn Fn(&mut Circuit)>;
    let mut cards: Vec<Card> = vec![Box::new(|c: &mut Circuit| {
        let n0 = c.node("n0");
        c.add_vsource("V1", n0, GROUND, Waveform::step(0.0, 5.0))
            .unwrap();
    })];
    for (i, &(kind, value)) in specs.iter().enumerate() {
        cards.push(Box::new(move |c: &mut Circuit| {
            let a = c.node(&format!("n{i}"));
            let b = c.node(&format!("n{}", i + 1));
            if kind == 0 {
                c.add_resistor(&format!("R{i}"), a, b, value).unwrap();
            } else {
                c.add_capacitor(&format!("C{i}"), b, GROUND, value * 1e-12)
                    .unwrap();
            }
        }));
    }
    let mut c = Circuit::new();
    let n = cards.len();
    for j in 0..n {
        cards[(j + rot) % n](&mut c);
    }
    let out = c.node(&format!("n{}", specs.len()));
    (c, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache key is structural: element insertion order (and the node
    /// renumbering it causes) must not change the hash.
    #[test]
    fn structural_hash_invariant_under_element_reordering(
        specs in proptest::collection::vec((0usize..2, 1.0..100.0f64), 1..12),
        rot in 0usize..16,
    ) {
        let (c0, o0) = ladder(&specs, 0);
        let (cr, or) = ladder(&specs, rot % (specs.len() + 1));
        prop_assert_eq!(structural_hash(&c0, o0), structural_hash(&cr, or));
    }

    /// …but any element-value edit does change it.
    #[test]
    fn structural_hash_sensitive_to_value_edits(
        specs in proptest::collection::vec((0usize..2, 1.0..100.0f64), 1..12),
        touch in 0usize..12,
    ) {
        let (c0, o0) = ladder(&specs, 0);
        let mut edited = specs.clone();
        let k = touch % edited.len();
        edited[k].1 *= 2.0;
        let (c1, o1) = ladder(&edited, 0);
        prop_assert!(structural_hash(&c0, o0) != structural_hash(&c1, o1));
    }
}

// ---------------------------------------------------------------------
// CLI: `awesim batch`
// ---------------------------------------------------------------------

fn awesim(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_awesim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_synthetic_deterministic_across_threads() {
    let run = |threads: &str| {
        let (ok, stdout, stderr) = awesim(&[
            "batch",
            "--synthetic",
            "12",
            "--threads",
            threads,
            "--no-timings",
        ]);
        assert!(ok, "batch failed: {stderr}");
        stdout
    };
    let one = run("1");
    assert_eq!(one, run("8"), "CLI output differs across thread counts");
    assert!(one.contains("batch report: synthetic-12"));
    assert!(one.contains("net0012"));
    assert!(!one.contains("latency"), "timings must be suppressed");
}

#[test]
fn cli_repeat_reports_full_cache_hits() {
    let (ok, stdout, stderr) =
        awesim(&["batch", "--synthetic", "6", "--repeat", "2", "--no-timings"]);
    assert!(ok, "batch failed: {stderr}");
    assert!(stdout.contains("--- pass 1/2 ---"));
    assert!(stdout.contains("--- pass 2/2 ---"));
    assert!(stdout.contains("solves 6  cache-hits 0"));
    assert!(stdout.contains("solves 0  cache-hits 6 (100.0 %)"));
}

#[test]
fn cli_multi_net_deck_and_json() {
    let deck = "* NET left
V1 in 0 STEP 0 5
R1 in out 1k
C1 out 0 1p
.end
* NET right
V1 in 0 STEP 0 5
R1 in mid 2k
C1 mid 0 2p
R2 mid out 1k
C2 out 0 1p
.end
";
    let path = {
        let mut p = std::env::temp_dir();
        p.push(format!("awesim-batch-{}.sp", std::process::id()));
        std::fs::write(&p, deck).expect("temp write");
        p
    };
    let (ok, stdout, stderr) = awesim(&["batch", path.to_str().unwrap(), "--json"]);
    let _ = std::fs::remove_file(&path);
    assert!(ok, "batch failed: {stderr}");
    assert!(stdout.contains("\"name\": \"left\""));
    assert!(stdout.contains("\"name\": \"right\""));
    assert!(stdout.contains("\"solves\": 2"));
    assert!(stdout.contains("\"cache_hit\": false"));
}

#[test]
fn cli_batch_rejects_bad_input() {
    let (ok, _, stderr) = awesim(&["batch"]);
    assert!(!ok);
    assert!(stderr.contains("missing deck path"));
    let (ok, _, stderr) = awesim(&["batch", "--synthetic", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("bad --synthetic value"));
}
