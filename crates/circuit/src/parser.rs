//! SPICE-like netlist deck parser.
//!
//! Supports the element cards needed for AWE's circuit class:
//!
//! ```text
//! R<name> <n+> <n-> <value>
//! C<name> <n+> <n-> <value> [IC=<v0>]
//! L<name> <n+> <n-> <value> [IC=<i0>]
//! V<name> <n+> <n-> <DC v | STEP v0 v1 | PWL(t1 v1 t2 v2 ...)>
//! I<name> <n+> <n-> <same source forms>
//! G<name> <n+> <n-> <nc+> <nc-> <gm>
//! E<name> <n+> <n-> <nc+> <nc-> <gain>
//! F<name> <n+> <n-> <Vcontrol> <gain>
//! H<name> <n+> <n-> <Vcontrol> <r>
//! * comment        ; comment
//! .end
//! ```
//!
//! Values accept standard SPICE magnitude suffixes
//! (`f p n u m k meg g t`) and are case-insensitive.

use crate::netlist::{Circuit, CircuitError};
use crate::waveform::Waveform;

/// Parses a SPICE-like deck into a [`Circuit`].
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] with the 1-based line number for any
/// malformed card, and propagates semantic errors (duplicate names,
/// non-positive values) from the circuit builder.
///
/// # Examples
///
/// ```
/// use awe_circuit::parse_deck;
///
/// # fn main() -> Result<(), awe_circuit::CircuitError> {
/// let c = parse_deck(
///     "* simple stage
///      V1 in 0 STEP 0 5
///      R1 in out 1k
///      C1 out 0 1p IC=2.5
///      .end",
/// )?;
/// assert_eq!(c.elements().len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_deck(deck: &str) -> Result<Circuit, CircuitError> {
    let mut c = Circuit::new();
    for (lineno, raw) in deck.lines().enumerate() {
        let line = lineno + 1;
        // Strip ';' comments and whitespace.
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() || text.starts_with('*') {
            continue;
        }
        if text.starts_with('.') {
            let directive = text.split_whitespace().next().unwrap_or("");
            if directive.eq_ignore_ascii_case(".end") {
                break;
            }
            // Other directives are ignored for forward compatibility.
            continue;
        }
        parse_card(&mut c, text, line)?;
    }
    Ok(c)
}

/// A named net parsed from a multi-net deck.
///
/// Produced by [`parse_multi_deck`]; `name` comes from a `* NET <name>`
/// header or is synthesized as `net<k>` (1-based position) for unnamed
/// segments.
#[derive(Clone, Debug)]
pub struct NamedNet {
    /// Net name, unique within the deck.
    pub name: String,
    /// The net's own circuit (independent node space).
    pub circuit: Circuit,
}

/// Parses a deck containing *many* independent nets into a vector of
/// [`NamedNet`]s.
///
/// Two conventions, freely mixable, delimit nets:
///
/// * a `* NET <name>` comment header starts a new net with that name;
/// * a `.end` directive terminates the current net, and any following
///   cards start the next one.
///
/// Nets with no `* NET` header are named `net<k>` by 1-based position.
/// Segments containing no element cards (e.g. trailing comments after the
/// final `.end`) are dropped.
///
/// # Errors
///
/// * [`CircuitError::Parse`] with the *global* deck line number for
///   malformed cards — and for duplicate net names, which are rejected
///   rather than silently shadowed.
///
/// # Examples
///
/// ```
/// use awe_circuit::parse_multi_deck;
///
/// # fn main() -> Result<(), awe_circuit::CircuitError> {
/// let nets = parse_multi_deck(
///     "* NET bitline
///      V1 in 0 STEP 0 5
///      R1 in out 1k
///      C1 out 0 1p
///      .end
///      * NET wordline
///      V1 in 0 STEP 0 3
///      R1 in out 2k
///      C1 out 0 2p
///      .end",
/// )?;
/// assert_eq!(nets.len(), 2);
/// assert_eq!(nets[0].name, "bitline");
/// assert_eq!(nets[1].name, "wordline");
/// # Ok(())
/// # }
/// ```
pub fn parse_multi_deck(deck: &str) -> Result<Vec<NamedNet>, CircuitError> {
    let mut nets: Vec<NamedNet> = Vec::new();
    let mut current = Circuit::new();
    let mut current_name: Option<(String, usize)> = None;
    let mut current_has_cards = false;

    let finish = |nets: &mut Vec<NamedNet>,
                  circuit: Circuit,
                  name: Option<(String, usize)>,
                  has_cards: bool|
     -> Result<(), CircuitError> {
        if !has_cards {
            return Ok(());
        }
        let (name, line) = name.unwrap_or_else(|| (format!("net{}", nets.len() + 1), 0));
        if nets.iter().any(|n| n.name == name) {
            return Err(perr(line, format!("duplicate net name `{name}`")));
        }
        nets.push(NamedNet { name, circuit });
        Ok(())
    };

    for (lineno, raw) in deck.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        // `* NET <name>` headers delimit nets; all other comments pass.
        if let Some(rest) = text.strip_prefix('*') {
            let mut words = rest.split_whitespace();
            if words.next().is_some_and(|w| w.eq_ignore_ascii_case("net")) {
                if let Some(name) = words.next() {
                    finish(
                        &mut nets,
                        std::mem::replace(&mut current, Circuit::new()),
                        current_name.take(),
                        current_has_cards,
                    )?;
                    current_name = Some((name.to_owned(), line));
                    current_has_cards = false;
                }
            }
            continue;
        }
        if text.starts_with('.') {
            let directive = text.split_whitespace().next().unwrap_or("");
            if directive.eq_ignore_ascii_case(".end") {
                finish(
                    &mut nets,
                    std::mem::replace(&mut current, Circuit::new()),
                    current_name.take(),
                    current_has_cards,
                )?;
                current_has_cards = false;
            }
            continue;
        }
        parse_card(&mut current, text, line)?;
        current_has_cards = true;
    }
    finish(&mut nets, current, current_name, current_has_cards)?;
    Ok(nets)
}

/// Parses a single element card into an existing circuit — the entry
/// point ECO-style edits use to *add* elements to an already-built net.
/// Node names the card mentions are created on demand, exactly as inside
/// [`parse_deck`]; errors report line 1 (the card is its own one-line
/// deck).
///
/// # Errors
///
/// [`CircuitError::Parse`] for a malformed card, plus the circuit
/// builder's semantic errors (duplicate name, non-positive value, …).
///
/// # Examples
///
/// ```
/// use awe_circuit::{parse_card_into, Circuit};
///
/// let mut c = Circuit::new();
/// parse_card_into(&mut c, "R1 in out 1k").unwrap();
/// assert!(c.element("R1").is_some());
/// assert!(parse_card_into(&mut c, "R1 in out 2k").is_err()); // duplicate
/// ```
pub fn parse_card_into(c: &mut Circuit, card: &str) -> Result<(), CircuitError> {
    let text = card.split(';').next().unwrap_or("").trim();
    if text.is_empty() || text.starts_with('*') || text.starts_with('.') {
        return Err(perr(1, "expected exactly one element card"));
    }
    parse_card(c, text, 1)
}

/// Parses a source specification (`DC v`, `STEP v0 v1`, `PWL(...)`, or a
/// bare DC value) into a [`Waveform`] — the entry point ECO-style edits
/// use to retarget an existing V/I source.
///
/// # Errors
///
/// [`CircuitError::Parse`] for an unrecognized or malformed spec.
///
/// # Examples
///
/// ```
/// use awe_circuit::parse_source_spec;
///
/// let w = parse_source_spec("STEP 0 5").unwrap();
/// assert_eq!(w.final_value(), 5.0);
/// assert!(parse_source_spec("WIGGLE 3").is_err());
/// ```
pub fn parse_source_spec(spec: &str) -> Result<Waveform, CircuitError> {
    let tokens: Vec<&str> = spec.split_whitespace().collect();
    if tokens.is_empty() {
        return Err(perr(1, "empty source specification"));
    }
    parse_source(&tokens, 1, "source")
}

fn perr(line: usize, message: impl Into<String>) -> CircuitError {
    CircuitError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_card(c: &mut Circuit, text: &str, line: usize) -> Result<(), CircuitError> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    let name = tokens[0];
    let kind = name
        .chars()
        .next()
        .expect("non-empty token")
        .to_ascii_uppercase();
    match kind {
        'R' | 'C' | 'L' => {
            if tokens.len() < 4 {
                return Err(perr(line, format!("{name}: expected <n+> <n-> <value>")));
            }
            let a = c.node(tokens[1]);
            let b = c.node(tokens[2]);
            let value = parse_value(tokens[3])
                .ok_or_else(|| perr(line, format!("{name}: bad value `{}`", tokens[3])))?;
            let ic = parse_ic(&tokens[4..], line, name)?;
            match kind {
                'R' => {
                    if ic.is_some() {
                        return Err(perr(line, format!("{name}: resistors take no IC")));
                    }
                    c.add_resistor(name, a, b, value)
                }
                'C' => c.add_capacitor_ic(name, a, b, value, ic),
                _ => c.add_inductor_ic(name, a, b, value, ic),
            }
        }
        'V' | 'I' => {
            if tokens.len() < 4 {
                return Err(perr(line, format!("{name}: expected <n+> <n-> <source>")));
            }
            let a = c.node(tokens[1]);
            let b = c.node(tokens[2]);
            let wf = parse_source(&tokens[3..], line, name)?;
            if kind == 'V' {
                c.add_vsource(name, a, b, wf)
            } else {
                c.add_isource(name, a, b, wf)
            }
        }
        'G' | 'E' => {
            if tokens.len() != 6 {
                return Err(perr(
                    line,
                    format!("{name}: expected <n+> <n-> <nc+> <nc-> <value>"),
                ));
            }
            let (a, b) = (c.node(tokens[1]), c.node(tokens[2]));
            let (cp, cn) = (c.node(tokens[3]), c.node(tokens[4]));
            let value = parse_value(tokens[5])
                .ok_or_else(|| perr(line, format!("{name}: bad value `{}`", tokens[5])))?;
            if kind == 'G' {
                c.add_vccs(name, a, b, cp, cn, value)
            } else {
                c.add_vcvs(name, a, b, cp, cn, value)
            }
        }
        'F' | 'H' => {
            if tokens.len() != 5 {
                return Err(perr(
                    line,
                    format!("{name}: expected <n+> <n-> <Vcontrol> <value>"),
                ));
            }
            let (a, b) = (c.node(tokens[1]), c.node(tokens[2]));
            let control = tokens[3];
            let value = parse_value(tokens[4])
                .ok_or_else(|| perr(line, format!("{name}: bad value `{}`", tokens[4])))?;
            if kind == 'F' {
                c.add_cccs(name, a, b, control, value)
            } else {
                c.add_ccvs(name, a, b, control, value)
            }
        }
        other => Err(perr(line, format!("unknown element kind `{other}`"))),
    }
}

fn parse_ic(rest: &[&str], line: usize, name: &str) -> Result<Option<f64>, CircuitError> {
    match rest {
        [] => Ok(None),
        [tok] => {
            let lower = tok.to_ascii_lowercase();
            if let Some(v) = lower.strip_prefix("ic=") {
                parse_value(v)
                    .map(Some)
                    .ok_or_else(|| perr(line, format!("{name}: bad IC value `{v}`")))
            } else {
                Err(perr(line, format!("{name}: unexpected token `{tok}`")))
            }
        }
        _ => Err(perr(line, format!("{name}: too many tokens"))),
    }
}

fn parse_source(tokens: &[&str], line: usize, name: &str) -> Result<Waveform, CircuitError> {
    let head = tokens[0].to_ascii_uppercase();
    if head == "DC" {
        if tokens.len() != 2 {
            return Err(perr(line, format!("{name}: DC expects one value")));
        }
        let v =
            parse_value(tokens[1]).ok_or_else(|| perr(line, format!("{name}: bad DC value")))?;
        return Ok(Waveform::dc(v));
    }
    if head == "STEP" {
        if tokens.len() != 3 {
            return Err(perr(line, format!("{name}: STEP expects v0 v1")));
        }
        let v0 =
            parse_value(tokens[1]).ok_or_else(|| perr(line, format!("{name}: bad STEP v0")))?;
        let v1 =
            parse_value(tokens[2]).ok_or_else(|| perr(line, format!("{name}: bad STEP v1")))?;
        return Ok(Waveform::step(v0, v1));
    }
    if head.starts_with("PWL") {
        // Accept PWL(a b c d) possibly split across tokens.
        let joined = tokens.join(" ");
        let open = joined
            .find('(')
            .ok_or_else(|| perr(line, format!("{name}: PWL missing `(`")))?;
        let close = joined
            .rfind(')')
            .ok_or_else(|| perr(line, format!("{name}: PWL missing `)`")))?;
        let inner = &joined[open + 1..close];
        let vals: Vec<f64> = inner
            .split([' ', ','])
            .filter(|s| !s.is_empty())
            .map(|s| {
                parse_value(s).ok_or_else(|| perr(line, format!("{name}: bad PWL value `{s}`")))
            })
            .collect::<Result<_, _>>()?;
        if vals.is_empty() || !vals.len().is_multiple_of(2) {
            return Err(perr(
                line,
                format!("{name}: PWL needs an even, positive number of values"),
            ));
        }
        let points: Vec<(f64, f64)> = vals.chunks(2).map(|p| (p[0], p[1])).collect();
        for w in points.windows(2) {
            if w[1].0 < w[0].0 {
                return Err(perr(line, format!("{name}: PWL times must not decrease")));
            }
        }
        return Ok(Waveform::pwl(points));
    }
    // Bare value = DC.
    if tokens.len() == 1 {
        if let Some(v) = parse_value(tokens[0]) {
            return Ok(Waveform::dc(v));
        }
    }
    Err(perr(
        line,
        format!("{name}: unrecognized source `{}`", tokens.join(" ")),
    ))
}

/// Parses a SPICE value with optional magnitude suffix:
/// `f p n u m k meg g t` (case-insensitive). Returns `None` on malformed
/// input.
///
/// ```
/// use awe_circuit::parse_value;
/// assert_eq!(parse_value("1k"), Some(1e3));
/// assert_eq!(parse_value("2.5MEG"), Some(2.5e6));
/// assert_eq!(parse_value("10p"), Some(1e-11));
/// assert_eq!(parse_value("bogus"), None);
/// ```
pub fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    // Find the longest numeric prefix.
    let mut split = t.len();
    for (i, ch) in t.char_indices() {
        if !(ch.is_ascii_digit() || matches!(ch, '.' | '+' | '-' | 'e')) {
            split = i;
            break;
        }
        // 'e' must be part of an exponent: digit must follow or sign+digit.
        if ch == 'e' {
            let rest = &t[i + 1..];
            let ok = rest
                .strip_prefix(['+', '-'])
                .unwrap_or(rest)
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit());
            if !ok {
                split = i;
                break;
            }
        }
    }
    let (num, suffix) = t.split_at(split);
    let base: f64 = num.parse().ok()?;
    let mult = match suffix {
        "" => 1.0,
        "f" => 1e-15,
        "p" => 1e-12,
        "n" => 1e-9,
        "u" => 1e-6,
        "m" => 1e-3,
        "k" => 1e3,
        "meg" => 1e6,
        "g" => 1e9,
        "t" => 1e12,
        // Trailing unit letters after a known suffix (e.g. "1kohm") are
        // accepted SPICE-style.
        s if s.starts_with("meg") => 1e6,
        s if !s.is_empty() => match &s[..1] {
            "f" => 1e-15,
            "p" => 1e-12,
            "n" => 1e-9,
            "u" => 1e-6,
            "m" => 1e-3,
            "k" => 1e3,
            "g" => 1e9,
            "t" => 1e12,
            _ => return None,
        },
        _ => return None,
    };
    Some(base * mult)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("100"), Some(100.0));
        assert_eq!(parse_value("1.5k"), Some(1500.0));
        assert_eq!(parse_value("2meg"), Some(2e6));
        assert_eq!(parse_value("3MEG"), Some(3e6));
        assert_eq!(parse_value("1m"), Some(1e-3));
        assert_eq!(parse_value("1u"), Some(1e-6));
        assert_eq!(parse_value("1n"), Some(1e-9));
        assert_eq!(parse_value("1p"), Some(1e-12));
        assert_eq!(parse_value("1f"), Some(1e-15));
        assert_eq!(parse_value("1g"), Some(1e9));
        assert_eq!(parse_value("1t"), Some(1e12));
        assert_eq!(parse_value("1e-9"), Some(1e-9));
        assert_eq!(parse_value("-2.5e3"), Some(-2500.0));
        assert_eq!(parse_value("1kohm"), Some(1e3));
        assert_eq!(parse_value(""), None);
        assert_eq!(parse_value("xyz"), None);
        assert_eq!(parse_value("1.2.3"), None);
    }

    #[test]
    fn parses_full_deck() {
        let deck = "
* RC tree of the paper's Fig. 4 (values ours)
V1 in 0 STEP 0 5
R1 in 1 1
R2 1 2 1 ; branch
R3 1 3 1
R4 3 4 1
C1 1 0 100u
C2 2 0 100u
C3 3 0 100u
C4 4 0 100u
.end
this line is after .end and ignored
";
        let c = parse_deck(deck).unwrap();
        assert_eq!(c.elements().len(), 9);
        assert_eq!(c.num_states(), 4);
        assert!(matches!(
            c.element("V1"),
            Some(Element::VoltageSource { .. })
        ));
    }

    #[test]
    fn parses_ic() {
        let c = parse_deck("C1 a 0 1p IC=5\nL1 a b 1n IC=-0.5m").unwrap();
        assert!(matches!(
            c.element("C1"),
            Some(Element::Capacitor {
                initial_voltage: Some(v),
                ..
            }) if *v == 5.0
        ));
        assert!(matches!(
            c.element("L1"),
            Some(Element::Inductor {
                initial_current: Some(i),
                ..
            }) if *i == -5e-4
        ));
    }

    #[test]
    fn parses_sources() {
        let c = parse_deck(
            "V1 a 0 DC 3
V2 b 0 STEP 0 5
V3 c 0 PWL(0 0 1n 5 2n 5)
I1 0 a 1m",
        )
        .unwrap();
        assert!(matches!(
            c.element("V3"),
            Some(Element::VoltageSource { waveform, .. }) if waveform.eval(0.5e-9) == 2.5
        ));
        assert!(matches!(
            c.element("I1"),
            Some(Element::CurrentSource { waveform, .. }) if waveform.eval(0.0) == 1e-3
        ));
    }

    #[test]
    fn parses_controlled_sources() {
        let c = parse_deck(
            "V1 in 0 DC 1
G1 out 0 in 0 2m
E1 e 0 in 0 10
F1 out 0 V1 0.5
H1 h 0 V1 100",
        )
        .unwrap();
        assert_eq!(c.elements().len(), 5);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_deck("R1 a 0 1k\nR2 a 0 bogus").unwrap_err();
        assert!(
            matches!(err, CircuitError::Parse { line: 2, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_malformed_cards() {
        assert!(parse_deck("R1 a 0").is_err());
        assert!(parse_deck("Q1 a 0 1k").is_err());
        assert!(parse_deck("V1 a 0 STEP 1").is_err());
        assert!(parse_deck("V1 a 0 PWL(0 1 2)").is_err());
        assert!(parse_deck("V1 a 0 PWL(1 0 0 1)").is_err());
        assert!(parse_deck("R1 a 0 1k IC=3").is_err());
        assert!(parse_deck("C1 a 0 1p garbage").is_err());
        assert!(parse_deck("G1 a 0 1m").is_err());
        assert!(parse_deck("F1 a 0 V9 1").is_err()); // unknown control
    }

    #[test]
    fn rejects_malformed_element_lines_with_line_numbers() {
        // Each malformed card reports the line it sits on, even after
        // valid cards.
        for (deck, line) in [
            ("R1 a 0 1k\nC7 a", 2),                 // too few fields
            ("R1 a 0 1k\nC1 a 0 1p\nL1 a b 5x", 3), // bad value suffix
            ("V1 a 0 STEP 0 5 extra", 1),           // trailing junk
        ] {
            let err = parse_deck(deck).unwrap_err();
            assert!(
                matches!(err, CircuitError::Parse { line: l, .. } if l == line),
                "{deck:?} -> {err:?}"
            );
        }
        // Semantic rejections carry the offending element, not a line.
        let err = parse_deck("R1 a 0 -0").unwrap_err();
        assert!(
            matches!(&err, CircuitError::NonPositiveValue { element, .. } if element == "R1"),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_duplicate_element_names() {
        let err = parse_deck("R1 a 0 1k\nR1 b 0 2k").unwrap_err();
        assert!(
            matches!(&err, CircuitError::DuplicateName(name) if name == "R1"),
            "{err:?}"
        );
    }

    #[test]
    fn ground_aliases_share_one_node() {
        // `0`, `gnd` and `GND` are the same node: mixing them must not
        // mint extra nodes or split the return path.
        let c = parse_deck("R1 a 0 1k\nR2 a gnd 2k\nC1 a GND 1p").unwrap();
        assert_eq!(c.num_nodes(), 2, "ground + `a` only");
        // A non-ground name that collides only by case stays distinct.
        let c = parse_deck("R1 a 0 1k\nR2 A 0 1k").unwrap();
        assert_eq!(c.num_nodes(), 3, "`a` and `A` are different nodes");
    }

    #[test]
    fn empty_decks_parse_to_empty_circuits() {
        for deck in ["", "\n\n", "* comment only\n", ".end\n", "* c\n.end\n"] {
            let c = parse_deck(deck).unwrap_or_else(|e| panic!("{deck:?}: {e}"));
            assert!(c.elements().is_empty(), "{deck:?}");
            assert_eq!(c.num_nodes(), 1, "ground only for {deck:?}");
        }
    }

    #[test]
    fn multi_deck_named_and_anonymous() {
        let deck = "
* NET first
V1 in 0 STEP 0 5
R1 in out 1k
C1 out 0 1p
.end
V1 in 0 STEP 0 3   ; anonymous net after bare .end
R1 in out 2k
C1 out 0 2p
.end
* NET third
V1 in 0 DC 1
R1 in out 1k
";
        let nets = parse_multi_deck(deck).unwrap();
        assert_eq!(nets.len(), 3);
        assert_eq!(nets[0].name, "first");
        assert_eq!(nets[1].name, "net2");
        assert_eq!(nets[2].name, "third");
        assert_eq!(nets[0].circuit.elements().len(), 3);
        assert_eq!(nets[2].circuit.elements().len(), 2);
    }

    #[test]
    fn multi_deck_single_net_matches_parse_deck() {
        let deck = "V1 in 0 STEP 0 5\nR1 in out 1k\nC1 out 0 1p\n.end\n";
        let nets = parse_multi_deck(deck).unwrap();
        assert_eq!(nets.len(), 1);
        assert_eq!(nets[0].name, "net1");
        let single = parse_deck(deck).unwrap();
        assert_eq!(nets[0].circuit.to_deck(), single.to_deck());
    }

    #[test]
    fn multi_deck_rejects_duplicate_names() {
        let deck = "
* NET dup
R1 a 0 1k
.end
* NET dup
R1 a 0 2k
";
        let err = parse_multi_deck(deck).unwrap_err();
        // Line 5 is the duplicate `* NET` header.
        assert!(
            matches!(
                &err,
                CircuitError::Parse { line: 5, message } if message.contains("duplicate net name `dup`")
            ),
            "{err:?}"
        );
    }

    #[test]
    fn multi_deck_reports_global_line_numbers() {
        let deck = "* NET a\nR1 x 0 1k\n.end\n* NET b\nR1 x 0 bogus\n";
        let err = parse_multi_deck(deck).unwrap_err();
        assert!(
            matches!(err, CircuitError::Parse { line: 5, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn multi_deck_skips_empty_segments() {
        assert!(parse_multi_deck("").unwrap().is_empty());
        assert!(parse_multi_deck("* just a comment\n.end\n")
            .unwrap()
            .is_empty());
        // Trailing `.end` + comments produce no phantom net.
        let nets = parse_multi_deck("R1 a 0 1\n.end\n* trailing words\n").unwrap();
        assert_eq!(nets.len(), 1);
    }

    #[test]
    fn round_trip_through_deck() {
        let deck = "V1 in 0 STEP 0 5\nR1 in out 1k\nC1 out 0 1p IC=2\n.end";
        let c1 = parse_deck(deck).unwrap();
        let c2 = parse_deck(&c1.to_deck()).unwrap();
        assert_eq!(c1.elements().len(), c2.elements().len());
        assert_eq!(c1.num_nodes(), c2.num_nodes());
    }
}
