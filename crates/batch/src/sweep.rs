//! Monte-Carlo corner sweeps: one base design, many value-only process
//! corners, replayed through the structure-group tape machinery.
//!
//! A *corner* is the base design with every R/C value perturbed by a
//! relative Gaussian draw (`value · (1 + σ·z)`). Corners never change
//! topology, element names, or observation nodes, so every corner of a
//! net shares the base net's [`pattern_key`](crate::design::pattern_key):
//! the batch engine puts the whole sweep into **one structure group**,
//! pays one donor symbolic factorization, and replays every other corner
//! through the compiled stamp-program/`RefactorLanes` tape path with
//! zero new symbolic work.
//!
//! Determinism is by construction, not by scheduling discipline: corner
//! `k`'s perturbation stream is seeded by a splitmix64 mix of
//! `seed ⊕ k` alone, so the circuit of corner `k` is a pure function of
//! `(base, spec, k)` — byte-identical at any thread count and any corner
//! order. The aggregation below keys every sample by corner index, so
//! quantiles and worst-corner attribution are permutation-invariant too.
//!
//! Perturbed values are validated *at the sweep boundary*: a draw that
//! drives R or C non-positive (or non-finite) yields a typed
//! [`CornerError`] naming the corner and element, and the corner is
//! excluded from the batch design — it can neither demote the tape to a
//! stamp-program admission fallback nor leak NaN into the quantile
//! aggregation.

use std::time::Duration;

use awe_circuit::pdn::{pdn_grid, PdnSpec};
use awe_circuit::{Circuit, Element};

use crate::design::{Design, NetSpec};
use crate::engine::{BatchEngine, BatchOptions, BatchRun};

static CORNERS: awe_obs::Counter = awe_obs::Counter::new("sweep.corners");
static REJECTED: awe_obs::Counter = awe_obs::Counter::new("sweep.corner_rejects");
static MEMBERS: awe_obs::Counter = awe_obs::Counter::new("sweep.members");

/// A corner-sweep specification: how many corners, how wide the
/// relative perturbation, and the master seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CornerSpec {
    /// Number of process corners to draw.
    pub corners: usize,
    /// Relative perturbation width: each R/C value becomes
    /// `value · (1 + sigma·z)` with `z` a standard-normal draw. `0.0`
    /// reproduces the base design bit-for-bit in every corner.
    pub sigma: f64,
    /// Master seed; corner `k` derives its stream from `seed ⊕ k`.
    pub seed: u64,
}

impl CornerSpec {
    /// A spec with the given corner count, σ, and seed.
    pub fn new(corners: usize, sigma: f64, seed: u64) -> Self {
        CornerSpec {
            corners,
            sigma,
            seed,
        }
    }
}

/// A perturbed value that left the physical domain, caught at the sweep
/// boundary before any analysis machinery saw it.
#[derive(Clone, Debug, PartialEq)]
pub struct CornerError {
    /// Corner index the draw belonged to.
    pub corner: usize,
    /// Base net whose circuit was being perturbed.
    pub net: String,
    /// Element whose perturbed value failed validation.
    pub element: String,
    /// The offending value (non-finite or ≤ 0).
    pub value: f64,
}

impl std::fmt::Display for CornerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corner {}: net {} element {} perturbed to non-physical value {:e}",
            self.corner, self.net, self.element, self.value
        )
    }
}

impl std::error::Error for CornerError {}

/// Delay distribution of one observation node across the sweep.
#[derive(Clone, Debug)]
pub struct NodeStats {
    /// Base net name (one observation node per base net).
    pub node: String,
    /// Per-corner 50 % delays in corner order: `(corner, delay)` — `None`
    /// when the corner solved but produced no delay (analysis error or
    /// no crossing). Boundary-rejected corners are absent entirely.
    pub delays: Vec<(usize, Option<f64>)>,
    /// Corners with a finite delay sample.
    pub samples: usize,
    /// Corners that ran but produced no usable delay.
    pub failed: usize,
    /// Median delay (nearest-rank over `samples`).
    pub p50: Option<f64>,
    /// 95th-percentile delay.
    pub p95: Option<f64>,
    /// 99th-percentile delay.
    pub p99: Option<f64>,
    /// Corner index of the worst (largest) delay; ties resolve to the
    /// lowest corner index.
    pub worst_corner: Option<usize>,
    /// The worst delay itself.
    pub worst_delay: Option<f64>,
}

/// A finished corner sweep: the underlying batch run plus per-node delay
/// distributions and the boundary-rejection ledger.
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// Base design name.
    pub design: String,
    /// The sweep specification.
    pub spec: CornerSpec,
    /// The batch run over all admitted corner members.
    pub run: BatchRun,
    /// `(corner, base-net index)` of each member, in member order —
    /// aligned with `run.results`.
    pub members: Vec<(usize, usize)>,
    /// Per-observation-node delay distributions, in base-net order.
    pub nodes: Vec<NodeStats>,
    /// Corners rejected at the validation boundary.
    pub rejected: Vec<CornerError>,
    /// Symbolic factorizations paid (`solves - pattern_hits`): the donor
    /// plus any member that missed the pattern cache.
    pub new_symbolic: usize,
    /// Symbolic factorizations beyond the donor's: the headline
    /// "value-only corners replay for free" claim is this being zero.
    pub new_symbolic_after_donor: usize,
    /// Wall time of corner generation + validation (the batch run's own
    /// wall time lives in `run.wall`).
    pub generate_wall: Duration,
}

impl SweepRun {
    /// FNV-1a digest of the deterministic sweep outcome: node names,
    /// per-corner delay bits, failure markers, and rejection records.
    /// Two sweeps of the same base/spec are required to agree on this
    /// digest at any thread count and any corner scheduling order.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut byte = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        let word = |v: u64, byte: &mut dyn FnMut(u8)| {
            for b in v.to_le_bytes() {
                byte(b);
            }
        };
        for n in &self.nodes {
            for b in n.node.bytes() {
                byte(b);
            }
            for &(corner, delay) in &n.delays {
                word(corner as u64, &mut byte);
                match delay {
                    Some(d) => word(d.to_bits(), &mut byte),
                    None => word(u64::MAX, &mut byte),
                }
            }
        }
        for r in &self.rejected {
            word(r.corner as u64, &mut byte);
            for b in r.net.bytes() {
                byte(b);
            }
            for b in r.element.bytes() {
                byte(b);
            }
            word(r.value.to_bits(), &mut byte);
        }
        h
    }

    /// Corners per second of batch wall time (0 for an empty/instant
    /// run). A "corner" here is one full set of observation nodes.
    pub fn corners_per_sec(&self) -> f64 {
        let secs = self.run.wall.as_secs_f64();
        let corners: std::collections::BTreeSet<usize> =
            self.members.iter().map(|&(c, _)| c).collect();
        if secs > 0.0 {
            corners.len() as f64 / secs
        } else {
            0.0
        }
    }
}

/// splitmix64 step (Steele et al.): the per-corner stream generator. The
/// stream for corner `k` starts at `seed ⊕ k`, so corner circuits are
/// pure functions of `(base, spec, corner)` — independent of thread
/// count and corner order.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in (0, 1) from one splitmix64 output (53-bit mantissa,
/// offset by half an ulp so 0 is excluded — `ln` below needs that).
fn unit(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Standard-normal draw (Box–Muller, first component).
fn normal(state: &mut u64) -> f64 {
    let u1 = unit(state);
    let u2 = unit(state);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Builds corner `k` of `base`: every R/C value scaled by `1 + σ·z` with
/// per-element standard-normal draws from the corner's splitmix stream.
///
/// # Errors
///
/// [`CornerError`] (with `net` left empty — the sweep fills it in) when
/// any perturbed value is non-finite or ≤ 0. The base circuit is never
/// mutated and no partially-perturbed circuit escapes.
pub fn corner_circuit(
    base: &Circuit,
    spec: &CornerSpec,
    corner: usize,
) -> Result<Circuit, CornerError> {
    let mut out = base.clone();
    if spec.sigma == 0.0 {
        // Exactly the base bits: don't even touch the values, so a 0σ
        // sweep dedups against the baseline's structural hash.
        return Ok(out);
    }
    let mut state = spec.seed ^ corner as u64;
    let mut edits: Vec<(&str, f64)> = Vec::new();
    for el in base.elements() {
        let (name, value) = match el {
            Element::Resistor { name, ohms, .. } => (name.as_str(), *ohms),
            Element::Capacitor { name, farads, .. } => (name.as_str(), *farads),
            _ => continue,
        };
        let perturbed = value * (1.0 + spec.sigma * normal(&mut state));
        if !perturbed.is_finite() || perturbed <= 0.0 {
            return Err(CornerError {
                corner,
                net: String::new(),
                element: name.to_string(),
                value: perturbed,
            });
        }
        edits.push((name, perturbed));
    }
    for (name, v) in edits {
        out.set_value(name, v)
            .expect("validated value on an existing element");
    }
    Ok(out)
}

/// Runs a corner sweep of `base` on `engine`, scheduling corners in
/// index order. See [`sweep_ordered`] for the scheduling-order variant
/// (results are identical by construction).
pub fn sweep(
    engine: &BatchEngine,
    base: &Design,
    spec: &CornerSpec,
    opts: &BatchOptions,
) -> SweepRun {
    let order: Vec<usize> = (0..spec.corners).collect();
    sweep_ordered(engine, base, spec, &order, opts)
}

/// Runs a corner sweep with an explicit corner scheduling order (a
/// permutation of `0..spec.corners`). The order only affects which
/// member happens to become the structure group's donor — every
/// aggregate, sample, and digest is keyed by corner index and comes out
/// byte-identical for any permutation.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..spec.corners`.
pub fn sweep_ordered(
    engine: &BatchEngine,
    base: &Design,
    spec: &CornerSpec,
    order: &[usize],
    opts: &BatchOptions,
) -> SweepRun {
    let mut seen = vec![false; spec.corners];
    for &k in order {
        assert!(
            k < spec.corners && !std::mem::replace(&mut seen[k], true),
            "order must be a permutation of 0..{}",
            spec.corners
        );
    }
    assert!(seen.iter().all(|&s| s), "order must cover every corner");

    let mut sweep_span = awe_obs::span("sweep.run");
    let gen_start = std::time::Instant::now();
    let mut members = Vec::with_capacity(spec.corners * base.nets().len());
    let mut nets = Vec::with_capacity(spec.corners * base.nets().len());
    let mut rejected = Vec::new();
    for &corner in order {
        for (ni, net) in base.nets().iter().enumerate() {
            match corner_circuit(&net.circuit, spec, corner) {
                Ok(circuit) => {
                    members.push((corner, ni));
                    nets.push(NetSpec {
                        name: format!("{}@c{corner:04}", net.name),
                        circuit,
                        output: net.output,
                    });
                }
                Err(mut e) => {
                    e.net.clone_from(&net.name);
                    rejected.push(e);
                }
            }
        }
    }
    let generate_wall = gen_start.elapsed();
    CORNERS.add(spec.corners as u64);
    REJECTED.add(rejected.len() as u64);
    MEMBERS.add(nets.len() as u64);
    // Rejections sort by (corner, net index); generation order above is
    // scheduling order, which must not leak into the report.
    rejected.sort_by(|a, b| (a.corner, &a.net).cmp(&(b.corner, &b.net)));

    let design = Design::from_nets(format!("{}+sweep", base.name), nets);
    let run = engine.run(&design, opts);

    let agg_span = awe_obs::span("sweep.aggregate");
    let nodes = aggregate(base, &run, &members);
    drop(agg_span);
    sweep_span.note(spec.corners as f64, members.len() as f64);

    let new_symbolic = run.solves.saturating_sub(run.pattern_hits);
    SweepRun {
        design: base.name.clone(),
        spec: *spec,
        new_symbolic,
        new_symbolic_after_donor: new_symbolic.saturating_sub(1),
        run,
        members,
        nodes,
        rejected,
        generate_wall,
    }
}

/// Per-node delay aggregation, keyed by corner index so the outcome is
/// independent of member scheduling order.
fn aggregate(base: &Design, run: &BatchRun, members: &[(usize, usize)]) -> Vec<NodeStats> {
    let mut per_net: Vec<Vec<(usize, Option<f64>)>> = vec![Vec::new(); base.nets().len()];
    for (&(corner, ni), result) in members.iter().zip(&run.results) {
        // Only finite delays enter the distribution: an analysis error
        // or a NaN (impossible post-validation, but cheap to refuse)
        // records a failure instead of poisoning the quantiles.
        let delay = match (&result.error, result.delay_50) {
            (None, Some(d)) if d.is_finite() => Some(d),
            _ => None,
        };
        per_net[ni].push((corner, delay));
    }
    base.nets()
        .iter()
        .zip(per_net)
        .map(|(net, mut delays)| {
            delays.sort_by_key(|&(corner, _)| corner);
            let mut sorted: Vec<f64> = delays.iter().filter_map(|&(_, d)| d).collect();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let failed = delays.len() - sorted.len();
            let pick = |p: f64| -> Option<f64> {
                if sorted.is_empty() {
                    return None;
                }
                let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
                Some(sorted[rank.clamp(1, sorted.len()) - 1])
            };
            let worst = delays
                .iter()
                .filter_map(|&(corner, d)| d.map(|d| (corner, d)))
                .fold(None::<(usize, f64)>, |acc, (corner, d)| match acc {
                    Some((_, best)) if d <= best => acc,
                    _ => Some((corner, d)),
                });
            NodeStats {
                node: net.name.clone(),
                samples: sorted.len(),
                failed,
                p50: pick(50.0),
                p95: pick(95.0),
                p99: pick(99.0),
                worst_corner: worst.map(|(c, _)| c),
                worst_delay: worst.map(|(_, d)| d),
                delays,
            }
        })
        .collect()
}

/// Builds a sweep-ready [`Design`] from a PDN spec: one net per
/// observation tap, all sharing the same grid circuit (and therefore
/// one structure group — the tap is excluded from the pattern key).
/// Net names are `pdn:<tap node>`.
pub fn pdn_design(name: impl Into<String>, spec: &PdnSpec) -> Design {
    let pdn = pdn_grid(spec);
    let nets = pdn
        .taps
        .iter()
        .map(|&tap| NetSpec {
            name: format!("pdn:{}", pdn.circuit.node_name(tap)),
            circuit: pdn.circuit.clone(),
            output: tap,
        })
        .collect();
    Design::from_nets(name, nets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_streams_are_order_independent() {
        let base = pdn_design("t", &PdnSpec::square(4));
        let spec = CornerSpec::new(4, 0.05, 11);
        let a = corner_circuit(&base.nets()[0].circuit, &spec, 3).unwrap();
        // Re-deriving corner 3 after other corners changes nothing.
        let _ = corner_circuit(&base.nets()[0].circuit, &spec, 1).unwrap();
        let b = corner_circuit(&base.nets()[0].circuit, &spec, 3).unwrap();
        assert_eq!(a.to_deck(), b.to_deck());
    }

    #[test]
    fn zero_sigma_is_the_base_bits() {
        let base = pdn_design("t", &PdnSpec::square(4));
        let spec = CornerSpec::new(2, 0.0, 99);
        let c = corner_circuit(&base.nets()[0].circuit, &spec, 1).unwrap();
        assert_eq!(c.to_deck(), base.nets()[0].circuit.to_deck());
    }

    #[test]
    fn nonphysical_draw_is_a_typed_error() {
        // σ huge: some draw drives a value negative almost surely.
        let base = pdn_design("t", &PdnSpec::square(4));
        let spec = CornerSpec::new(1, 1e6, 5);
        let err = corner_circuit(&base.nets()[0].circuit, &spec, 0).unwrap_err();
        assert!(!err.element.is_empty());
        assert!(!err.value.is_finite() || err.value <= 0.0);
    }

    #[test]
    fn sweep_groups_all_corners_into_one_pattern() {
        let engine = BatchEngine::new();
        // 15×15 mesh: 242 nodes, above the sparse threshold (192), so
        // the pattern cache and tape replay actually engage.
        let base = pdn_design("t", &PdnSpec::square(15));
        let spec = CornerSpec::new(6, 0.05, 3);
        let run = sweep(&engine, &base, &spec, &BatchOptions::default());
        assert!(run.rejected.is_empty());
        assert_eq!(run.members.len(), 6 * base.nets().len());
        assert_eq!(run.new_symbolic, 1, "one donor symbolic for the sweep");
        assert_eq!(run.new_symbolic_after_donor, 0);
        for n in &run.nodes {
            assert_eq!(n.samples, 6);
            assert_eq!(n.failed, 0);
            assert!(n.p50 <= n.p95 && n.p95 <= n.p99);
            assert!(n.worst_delay >= n.p99);
        }
    }

    #[test]
    fn permuted_schedule_is_byte_identical() {
        let base = pdn_design("t", &PdnSpec::square(5));
        let spec = CornerSpec::new(5, 0.08, 17);
        let opts = BatchOptions::default();
        let fwd = sweep(&engine_fresh(), &base, &spec, &opts);
        let rev: Vec<usize> = (0..5).rev().collect();
        let bwd = sweep_ordered(&engine_fresh(), &base, &spec, &rev, &opts);
        assert_eq!(fwd.digest(), bwd.digest());
    }

    fn engine_fresh() -> BatchEngine {
        BatchEngine::new()
    }
}
