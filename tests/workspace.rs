//! Workspace-reuse equivalence over the verify fuzzer's seed-0 corpus:
//! decompositions computed through a shared, repeatedly recycled
//! [`MomentWorkspace`] must be bit-identical to the allocating path — for
//! every topology class (trees, meshes, RLC ladders, floating coupled
//! lines) and across repeated solves on the same warm buffers.

use awesim::core::AweEngine;
use awesim::mna::{Decomposition, MnaSystem, MomentEngine, MomentWorkspace};
use awesim::verify::{CaseParams, TopologyClass};

const MOMENTS: usize = 10;

fn assert_bit_identical(a: &Decomposition, b: &Decomposition, label: &str) {
    assert_eq!(a.baseline, b.baseline, "{label}: baseline");
    assert_eq!(a.pieces.len(), b.pieces.len(), "{label}: piece count");
    for (p, q) in a.pieces.iter().zip(&b.pieces) {
        assert_eq!(p.at, q.at, "{label}: onset");
        assert_eq!(p.a, q.a, "{label}: a");
        assert_eq!(p.b, q.b, "{label}: b");
        assert_eq!(p.m_minus2, q.m_minus2, "{label}: m_minus2");
        assert_eq!(p.moments.len(), q.moments.len(), "{label}: moment count");
        for (m, (x, y)) in p.moments.iter().zip(&q.moments).enumerate() {
            assert_eq!(x, y, "{label}: moment {m} differs");
        }
    }
}

#[test]
fn shared_workspace_matches_allocating_path_on_seed0_corpus() {
    // One workspace shared across every case and repeat: buffer sizes and
    // pool contents carried over from a *different* circuit must never
    // leak into the numbers.
    let mut ws = MomentWorkspace::new();
    for class in TopologyClass::ALL {
        for index in 0..6 {
            let case = CaseParams::generate(class, 0, index).build();
            let label = format!("{}[{index}]", class.name());
            let sys = MnaSystem::build(&case.circuit).expect("corpus circuits build");
            let engine = MomentEngine::new(&sys).expect("corpus circuits factor");

            let alloc = engine.decompose(MOMENTS).expect("allocating path");
            for repeat in 0..3 {
                let shared = engine
                    .decompose_with(&mut ws, MOMENTS)
                    .expect("workspace path");
                assert_bit_identical(&alloc, &shared, &format!("{label} repeat {repeat}"));
                ws.recycle(shared);
            }
        }
    }
}

#[test]
fn repeated_engine_solves_are_stable_on_seed0_corpus() {
    // The AWE engine recycles its internal workspace between solves; a
    // third solve on warm buffers must reproduce the first exactly.
    for class in TopologyClass::ALL {
        let case = CaseParams::generate(class, 0, 1).build();
        let engine = AweEngine::new(&case.circuit).expect("builds");
        let first = engine.approximate(case.output, 2);
        let Ok(first) = first else {
            // Some corpus draws legitimately fail (e.g. unstable at the
            // requested order); stability of failure is covered elsewhere.
            continue;
        };
        for _ in 0..2 {
            let again = engine.approximate(case.output, 2).expect("same solve");
            assert_eq!(first.order, again.order, "{class}");
            assert_eq!(first.poles(), again.poles(), "{class}");
            assert_eq!(first.final_value(), again.final_value(), "{class}");
            assert_eq!(first.error_estimate, again.error_estimate, "{class}");
        }
    }
}
