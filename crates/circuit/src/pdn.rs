//! Power-delivery-network (PDN) grid generator.
//!
//! The workload AWE was born for: very large RC meshes under process
//! variation. A PDN is modeled here as two metal layers — a fine
//! bottom-layer mesh of resistive segments with a decoupling capacitor
//! at every node, and a coarse top-layer strap lattice tied down through
//! via resistances — driven by a single supply pad through a pad
//! resistance. Every element value is strictly positive and every
//! capacitor is grounded, so the generated circuit stays inside the
//! stamp-program replay contract (see `awe_mna::StampProgram`) and the
//! sparse factor-once/refactor-many path.
//!
//! Node counts scale as `nx·ny` plus the strap lattice, so specs in the
//! 100×100–320×320 range reach the 10k–100k-node regime the
//! power-delivery literature targets.

use crate::element::{NodeId, GROUND};
use crate::netlist::Circuit;
use crate::waveform::Waveform;

/// Parameters of a generated PDN grid. All resistances/capacitances are
/// per segment/node; `strap_pitch == 0` disables the top layer entirely.
#[derive(Clone, Debug, PartialEq)]
pub struct PdnSpec {
    /// Mesh columns (bottom-layer nodes per row).
    pub nx: usize,
    /// Mesh rows.
    pub ny: usize,
    /// Strap lattice pitch in mesh nodes: a top-layer node sits above
    /// every mesh node whose row *and* column are multiples of the
    /// pitch. `0` disables the strap layer.
    pub strap_pitch: usize,
    /// Mesh segment resistance (ohms).
    pub r_seg: f64,
    /// Strap segment resistance (ohms) — straps are wide metal, so this
    /// is typically well below `r_seg`.
    pub r_strap: f64,
    /// Via resistance tying a strap node to the mesh node beneath it.
    pub r_via: f64,
    /// Pad resistance between the supply and the grid.
    pub r_pad: f64,
    /// Decoupling capacitance per mesh node (farads).
    pub c_node: f64,
    /// Supply step magnitude (volts).
    pub vdd: f64,
    /// Number of named observation taps (see [`pdn_grid`]).
    pub taps: usize,
}

impl Default for PdnSpec {
    fn default() -> Self {
        PdnSpec {
            nx: 16,
            ny: 16,
            strap_pitch: 4,
            r_seg: 1.0,
            r_strap: 0.1,
            r_via: 0.2,
            r_pad: 0.5,
            c_node: 1e-12,
            vdd: 1.0,
            taps: 4,
        }
    }
}

impl PdnSpec {
    /// A square `n × n` mesh with the default electrical values.
    pub fn square(n: usize) -> Self {
        PdnSpec {
            nx: n,
            ny: n,
            ..PdnSpec::default()
        }
    }

    /// Total node count the spec generates (mesh + straps + supply),
    /// excluding ground — matches `circuit.num_nodes() - 1`.
    pub fn node_count(&self) -> usize {
        self.nx * self.ny + self.strap_node_count() + 1
    }

    /// Strap-layer node count.
    pub fn strap_node_count(&self) -> usize {
        if self.strap_pitch == 0 {
            0
        } else {
            self.ny.div_ceil(self.strap_pitch) * self.nx.div_ceil(self.strap_pitch)
        }
    }
}

/// A generated PDN grid: the netlist plus its observation taps.
#[derive(Clone, Debug)]
pub struct Pdn {
    /// The netlist.
    pub circuit: Circuit,
    /// Observation taps, electrically distant from the pad (far corner
    /// first), in a deterministic order.
    pub taps: Vec<NodeId>,
    /// Bottom-layer mesh node count (`nx · ny`).
    pub mesh_nodes: usize,
    /// Top-layer strap node count.
    pub strap_nodes: usize,
}

impl Pdn {
    /// The tap node names, in tap order.
    pub fn tap_names(&self) -> Vec<String> {
        self.taps
            .iter()
            .map(|&t| self.circuit.node_name(t).to_string())
            .collect()
    }
}

/// Generates a power-grid mesh per `spec`.
///
/// Layout: mesh nodes `p{row}_{col}`, strap nodes `s{row}_{col}`,
/// horizontal/vertical mesh segments `Rh…`/`Rv…`, strap segments
/// `Rsh…`/`Rsv…`, vias `Rw…`, decaps `Cp…`, and the supply `Vdd` driving
/// node `vdd` through `Rpad` into the grid corner (strap `s0_0` when the
/// top layer exists, mesh `p0_0` otherwise).
///
/// Observation taps are drawn from a fixed candidate ladder of
/// electrically distant points (far corner, center, far edges, quarter
/// points, near corners), deduplicated.
///
/// # Panics
///
/// Panics when `nx < 2`, `ny < 2`, `taps == 0`, `taps` exceeds the
/// distinct candidate taps the mesh offers, or any electrical value is
/// non-positive (via the circuit builder).
///
/// # Examples
///
/// ```
/// use awe_circuit::pdn::{pdn_grid, PdnSpec};
///
/// let pdn = pdn_grid(&PdnSpec::square(8));
/// assert_eq!(pdn.mesh_nodes, 64);
/// assert_eq!(pdn.strap_nodes, 4); // pitch 4 on an 8×8 mesh
/// assert_eq!(pdn.circuit.num_nodes() - 1, PdnSpec::square(8).node_count());
/// assert_eq!(pdn.tap_names()[0], "p7_7"); // far corner first
/// ```
pub fn pdn_grid(spec: &PdnSpec) -> Pdn {
    assert!(spec.nx >= 2 && spec.ny >= 2, "mesh must be at least 2×2");
    assert!(spec.taps > 0, "need at least one observation tap");
    let (nx, ny, pitch) = (spec.nx, spec.ny, spec.strap_pitch);

    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource("Vdd", vdd, GROUND, Waveform::step(0.0, spec.vdd))
        .expect("valid");

    // Bottom layer: mesh nodes row-major, each with a decap, plus
    // horizontal and vertical segments.
    let mut mesh = Vec::with_capacity(ny * nx);
    for i in 0..ny {
        for j in 0..nx {
            let n = ckt.node(&format!("p{i}_{j}"));
            ckt.add_capacitor(&format!("Cp{i}_{j}"), n, GROUND, spec.c_node)
                .expect("valid");
            mesh.push(n);
        }
    }
    let at = |i: usize, j: usize| mesh[i * nx + j];
    for i in 0..ny {
        for j in 0..nx {
            if j + 1 < nx {
                ckt.add_resistor(&format!("Rh{i}_{j}"), at(i, j), at(i, j + 1), spec.r_seg)
                    .expect("valid");
            }
            if i + 1 < ny {
                ckt.add_resistor(&format!("Rv{i}_{j}"), at(i, j), at(i + 1, j), spec.r_seg)
                    .expect("valid");
            }
        }
    }

    // Top layer: coarse strap lattice over every (pitch-multiple row,
    // pitch-multiple column), tied down by a via at each lattice point.
    let mut strap_nodes = 0usize;
    let mut entry = at(0, 0);
    if pitch > 0 {
        let rows: Vec<usize> = (0..ny).step_by(pitch).collect();
        let cols: Vec<usize> = (0..nx).step_by(pitch).collect();
        let mut strap = std::collections::BTreeMap::new();
        for &i in &rows {
            for &j in &cols {
                let s = ckt.node(&format!("s{i}_{j}"));
                ckt.add_resistor(&format!("Rw{i}_{j}"), s, at(i, j), spec.r_via)
                    .expect("valid");
                strap.insert((i, j), s);
                strap_nodes += 1;
            }
        }
        for (ri, &i) in rows.iter().enumerate() {
            for (ci, &j) in cols.iter().enumerate() {
                if ci + 1 < cols.len() {
                    let (a, b) = (strap[&(i, j)], strap[&(i, cols[ci + 1])]);
                    ckt.add_resistor(&format!("Rsh{i}_{j}"), a, b, spec.r_strap)
                        .expect("valid");
                }
                if ri + 1 < rows.len() {
                    let (a, b) = (strap[&(i, j)], strap[&(rows[ri + 1], j)]);
                    ckt.add_resistor(&format!("Rsv{i}_{j}"), a, b, spec.r_strap)
                        .expect("valid");
                }
            }
        }
        entry = strap[&(0, 0)];
    }
    ckt.add_resistor("Rpad", vdd, entry, spec.r_pad)
        .expect("valid");

    // Observation taps: a ladder of electrically distant mesh points.
    let candidates = [
        (ny - 1, nx - 1),
        (ny / 2, nx / 2),
        (ny - 1, nx / 2),
        (ny / 2, nx - 1),
        (0, nx - 1),
        (ny - 1, 0),
        (3 * ny / 4, 3 * nx / 4),
        (ny / 4, 3 * nx / 4),
        (3 * ny / 4, nx / 4),
        (ny / 4, nx / 4),
    ];
    let mut seen = std::collections::BTreeSet::new();
    let taps: Vec<NodeId> = candidates
        .iter()
        .filter(|&&(i, j)| seen.insert((i, j)))
        .take(spec.taps)
        .map(|&(i, j)| at(i, j))
        .collect();
    assert_eq!(
        taps.len(),
        spec.taps,
        "mesh too small for {} distinct taps",
        spec.taps
    );

    Pdn {
        circuit: ckt,
        taps,
        mesh_nodes: ny * nx,
        strap_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::analyze;

    #[test]
    fn counts_match_spec() {
        let spec = PdnSpec {
            nx: 10,
            ny: 6,
            strap_pitch: 3,
            taps: 5,
            ..PdnSpec::default()
        };
        let pdn = pdn_grid(&spec);
        assert_eq!(pdn.mesh_nodes, 60);
        assert_eq!(pdn.strap_nodes, 2 * 4); // rows {0,3}, cols {0,3,6,9}
        assert_eq!(spec.strap_node_count(), pdn.strap_nodes);
        assert_eq!(pdn.circuit.num_nodes() - 1, spec.node_count());
        assert_eq!(pdn.taps.len(), 5);
        // Decap per mesh node, no floating capacitors, no inductors.
        let report = analyze(&pdn.circuit);
        assert!(!report.has_floating_capacitors);
        assert!(!report.has_inductors);
        assert_eq!(pdn.circuit.num_states(), 60);
    }

    #[test]
    fn no_strap_layer_when_pitch_zero() {
        let spec = PdnSpec {
            strap_pitch: 0,
            ..PdnSpec::square(6)
        };
        let pdn = pdn_grid(&spec);
        assert_eq!(pdn.strap_nodes, 0);
        assert!(pdn.circuit.find_node("s0_0").is_none());
        // The pad lands on the mesh corner instead.
        assert!(pdn.circuit.element("Rpad").is_some());
    }

    #[test]
    fn taps_are_distinct_and_far_corner_first() {
        let pdn = pdn_grid(&PdnSpec::square(9));
        let names = pdn.tap_names();
        assert_eq!(names[0], "p8_8");
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn deterministic() {
        let a = pdn_grid(&PdnSpec::square(7));
        let b = pdn_grid(&PdnSpec::square(7));
        assert_eq!(a.circuit.to_deck(), b.circuit.to_deck());
    }

    #[test]
    #[should_panic(expected = "distinct taps")]
    fn too_many_taps_panics() {
        pdn_grid(&PdnSpec {
            taps: 11,
            ..PdnSpec::square(4)
        });
    }
}
