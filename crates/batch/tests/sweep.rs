//! Corner-sweep invariants: a 0σ sweep is the baseline bit-for-bit, and
//! sweep outcomes are byte-identical across thread counts and corner
//! scheduling orders — determinism by construction, not by accident of
//! scheduling.

use proptest::prelude::*;

use awe_batch::{
    pdn_design, sweep, sweep_json_report, sweep_ordered, BatchEngine, BatchOptions, CornerSpec,
    Design,
};
use awe_circuit::pdn::PdnSpec;

fn opts(threads: usize) -> BatchOptions {
    BatchOptions {
        threads,
        ..BatchOptions::default()
    }
}

/// Runs the base design once per tap and returns the per-net 50% delays
/// in design order.
fn baseline_delays(base: &Design) -> Vec<Option<f64>> {
    let run = BatchEngine::new().run(base, &opts(1));
    run.results.iter().map(|r| r.delay_50).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A 0σ sweep reproduces the baseline delay **bit-for-bit** in every
    /// corner: corner circuits are untouched clones, so each corner's
    /// member dedups onto the baseline's structural hash and replays the
    /// identical numeric path.
    #[test]
    fn zero_sigma_sweep_is_bit_identical_to_baseline(
        n in 5usize..9,
        corners in 1usize..5,
        seed in 0u64..1000,
    ) {
        let base = pdn_design("p", &PdnSpec::square(n));
        let baseline = baseline_delays(&base);
        let spec = CornerSpec::new(corners, 0.0, seed);
        let run = sweep(&BatchEngine::new(), &base, &spec, &opts(1));
        prop_assert!(run.rejected.is_empty());
        for (node, want) in run.nodes.iter().zip(&baseline) {
            prop_assert_eq!(node.delays.len(), corners);
            for &(_, got) in &node.delays {
                // Bit-level equality, not tolerance: same circuit bits,
                // same arithmetic, same answer.
                prop_assert_eq!(got.map(f64::to_bits), want.map(f64::to_bits));
            }
        }
    }

    /// The digest (node names, per-corner delay bits, rejections) agrees
    /// for any permutation of the corner scheduling order.
    #[test]
    fn corner_permutations_are_byte_identical(
        corners in 2usize..6,
        sigma in 0.01f64..0.15,
        seed in 0u64..1000,
        shuffle_seed in 0u64..1000,
    ) {
        let base = pdn_design("p", &PdnSpec::square(5));
        let spec = CornerSpec::new(corners, sigma, seed);
        let fwd = sweep(&BatchEngine::new(), &base, &spec, &opts(1));

        // Fisher–Yates off a splitmix-style stream; any permutation works.
        let mut order: Vec<usize> = (0..corners).collect();
        let mut state = shuffle_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let perm = sweep_ordered(&BatchEngine::new(), &base, &spec, &order, &opts(1));
        prop_assert_eq!(fwd.digest(), perm.digest());
        prop_assert_eq!(
            sweep_json_report(&fwd, false),
            sweep_json_report(&perm, false)
        );
    }
}

/// Thread count must not leak into any reported byte: digest and the
/// timing-free JSON report agree across 1, 2, and 4 workers.
#[test]
fn sweep_is_byte_identical_across_thread_counts() {
    // 15×15: past the sparse threshold so the pattern-cache/tape path
    // (the one with actual cross-thread scheduling) is exercised.
    let base = pdn_design("p", &PdnSpec::square(15));
    let spec = CornerSpec::new(6, 0.07, 23);
    let runs: Vec<_> = [1, 2, 4]
        .iter()
        .map(|&t| sweep(&BatchEngine::new(), &base, &spec, &opts(t)))
        .collect();
    for r in &runs[1..] {
        assert_eq!(runs[0].digest(), r.digest());
        assert_eq!(
            sweep_json_report(&runs[0], false),
            sweep_json_report(r, false)
        );
    }
}

/// Boundary rejection: a σ wide enough to drive values negative yields
/// typed per-corner errors naming net and element, the corner is absent
/// from the distribution, and the quantiles stay NaN-free.
#[test]
fn nonphysical_corners_are_rejected_not_cascaded() {
    let base = pdn_design("p", &PdnSpec::square(5));
    // σ = 0.8: each element has a few-percent chance per draw of going
    // non-positive; across 25 nodes × several corners rejection is
    // essentially certain, while some corners typically survive.
    let spec = CornerSpec::new(8, 0.8, 41);
    let run = sweep(&BatchEngine::new(), &base, &spec, &opts(1));
    assert!(
        !run.rejected.is_empty(),
        "σ=0.8 should reject at least one corner draw"
    );
    for e in &run.rejected {
        assert!(e.corner < spec.corners);
        assert!(!e.net.is_empty());
        assert!(!e.element.is_empty());
        assert!(!e.value.is_finite() || e.value <= 0.0);
    }
    let rejected_pairs: std::collections::BTreeSet<(usize, &str)> = run
        .rejected
        .iter()
        .map(|e| (e.corner, e.net.as_str()))
        .collect();
    for node in &run.nodes {
        for &(corner, d) in &node.delays {
            assert!(
                !rejected_pairs.contains(&(corner, node.node.as_str())),
                "rejected corner {corner} leaked into {}",
                node.node
            );
            if let Some(d) = d {
                assert!(d.is_finite());
            }
        }
        for q in [node.p50, node.p95, node.p99, node.worst_delay]
            .into_iter()
            .flatten()
        {
            assert!(q.is_finite(), "quantiles must stay NaN-free");
        }
    }
}
