//! Error type for the reference simulator.

use std::error::Error;
use std::fmt;

use awe_mna::MnaError;
use awe_numeric::NumericError;

/// Errors from transient simulation and exact-pole extraction.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// MNA-level failure (assembly, DC solve, singular implicit matrix).
    Mna(MnaError),
    /// Numeric failure (eigenvalue iteration, …).
    Numeric(NumericError),
    /// The accepted-step budget was exhausted before `t_stop`.
    StepLimit {
        /// The budget that was exhausted.
        steps: usize,
    },
    /// LTE control drove the step size to the underflow floor.
    StepUnderflow {
        /// Simulation time at which the step collapsed.
        at: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mna(e) => write!(f, "mna failure: {e}"),
            SimError::Numeric(e) => write!(f, "numeric failure: {e}"),
            SimError::StepLimit { steps } => {
                write!(f, "transient exceeded the {steps}-step budget")
            }
            SimError::StepUnderflow { at } => {
                write!(f, "step size underflowed at t = {at}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Mna(e) => Some(e),
            SimError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MnaError> for SimError {
    fn from(e: MnaError) -> Self {
        SimError::Mna(e)
    }
}

impl From<NumericError> for SimError {
    fn from(e: NumericError) -> Self {
        SimError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::StepLimit { steps: 10 };
        assert!(e.to_string().contains("10-step"));
        let e2: SimError = MnaError::NoDcSolution.into();
        assert!(e2.to_string().contains("mna failure"));
        use std::error::Error;
        assert!(e2.source().is_some());
        assert!(e.source().is_none());
        let e3 = SimError::StepUnderflow { at: 1e-9 };
        assert!(e3.to_string().contains("underflowed"));
    }
}
