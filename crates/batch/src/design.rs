//! The design model: many independent nets analyzed as one batch, plus
//! the structural net hash that keys the incremental-reanalysis cache.

use std::time::{Duration, Instant};

use awe_circuit::generators::{random_rc_tree, rc_line};
use awe_circuit::{
    parse_multi_deck, Circuit, CircuitError, Element, NodeId, ReduceOptions, Reduced, Waveform,
};

/// One net of a design: an independent circuit with a chosen observation
/// node.
#[derive(Clone, Debug)]
pub struct NetSpec {
    /// Net name, unique within the design.
    pub name: String,
    /// The net's circuit (its own node space).
    pub circuit: Circuit,
    /// The node whose voltage waveform the analysis reports.
    pub output: NodeId,
}

impl NetSpec {
    /// Structural hash of this net (see [`structural_hash`]).
    pub fn hash(&self) -> u64 {
        structural_hash(&self.circuit, self.output)
    }

    /// Topology-only pattern key of this net (see [`pattern_key`]).
    pub fn pattern_key(&self) -> u64 {
        pattern_key(&self.circuit)
    }
}

/// A design: a named, ordered collection of independent nets.
///
/// Order is the *reporting* order — batch results are always returned in
/// design order regardless of how the scheduler interleaves the work.
#[derive(Clone, Debug)]
pub struct Design {
    /// Design name (deck stem or `synthetic-<n>`).
    pub name: String,
    nets: Vec<NetSpec>,
    /// Wall time spent parsing or generating the nets.
    pub parse_time: Duration,
}

impl Design {
    /// Builds a design from explicit nets.
    pub fn from_nets(name: impl Into<String>, nets: Vec<NetSpec>) -> Self {
        Design {
            name: name.into(),
            nets,
            parse_time: Duration::ZERO,
        }
    }

    /// Parses a multi-net deck (see
    /// [`parse_multi_deck`](awe_circuit::parse_multi_deck)) into a design.
    ///
    /// Observation node per net: the node named `out` if present,
    /// otherwise the highest-numbered node (the generators' and decks'
    /// far-end convention).
    ///
    /// # Errors
    ///
    /// Propagates parse errors, including duplicate net names.
    pub fn from_deck(name: impl Into<String>, deck: &str) -> Result<Self, CircuitError> {
        let start = Instant::now();
        let nets = parse_multi_deck(deck)?
            .into_iter()
            .map(|net| {
                let output = default_output(&net.circuit);
                NetSpec {
                    name: net.name,
                    circuit: net.circuit,
                    output,
                }
            })
            .collect();
        Ok(Design {
            name: name.into(),
            nets,
            parse_time: start.elapsed(),
        })
    }

    /// A synthetic design of `n` random RC-tree nets (sizes cycle through
    /// a small/medium/large mix), deterministic per `seed`. This is the
    /// batch bench workload.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        let start = Instant::now();
        let sizes = [8usize, 12, 16, 24, 32];
        let nets = (0..n)
            .map(|i| {
                let nodes = sizes[i % sizes.len()];
                let g = random_rc_tree(
                    nodes,
                    (10.0, 500.0),
                    (0.05e-12, 2e-12),
                    seed.wrapping_add(i as u64),
                    Waveform::step(0.0, 5.0),
                );
                NetSpec {
                    name: format!("net{:04}", i + 1),
                    circuit: g.circuit,
                    output: g.output,
                }
            })
            .collect();
        Design {
            name: format!("synthetic-{n}"),
            nets,
            parse_time: start.elapsed(),
        }
    }

    /// A design of `n` RC chains with **identical topology** (same node
    /// and element names, same connectivity) and per-net perturbed
    /// values: every structural hash is distinct, every
    /// [`pattern_key`] is equal, so the whole design forms one structure
    /// group sharing one symbolic LU analysis. Deterministic per `seed`.
    /// This is the serve bench's warm-path workload.
    pub fn synthetic_chains(n: usize, stages: usize, seed: u64) -> Self {
        let start = Instant::now();
        let nets = (0..n)
            .map(|i| {
                // Cheap deterministic value jitter in [0, 1): enough to
                // make every hash unique without changing the topology.
                let mix = |k: u64| {
                    let mut x = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ k;
                    x ^= x >> 33;
                    x = x.wrapping_mul(0xff51afd7ed558ccd);
                    x ^= x >> 33;
                    (x >> 11) as f64 / (1u64 << 53) as f64
                };
                let g = rc_line(
                    stages,
                    100.0 * (1.0 + 0.5 * mix(1)),
                    1e-12 * (1.0 + 0.5 * mix(2)),
                    Waveform::step(0.0, 5.0),
                );
                NetSpec {
                    name: format!("net{:04}", i + 1),
                    circuit: g.circuit,
                    output: g.output,
                }
            })
            .collect();
        Design {
            name: format!("chains-{n}x{stages}"),
            nets,
            parse_time: start.elapsed(),
        }
    }

    /// A structure-group workload: `groups` distinct random RC-tree
    /// topologies (sizes cycle through the [`Design::synthetic`] mix) ×
    /// `members` nets each. Members of a group share the topology exactly
    /// — equal [`pattern_key`], one shared symbolic analysis, one batch
    /// tape — while every R/C value is independently perturbed, so all
    /// structural hashes stay distinct. Deterministic per `seed`. This is
    /// the batch-throughput bench workload.
    pub fn synthetic_groups(groups: usize, members: usize, seed: u64) -> Self {
        let start = Instant::now();
        let sizes = [8usize, 12, 16, 24, 32];
        let mut nets = Vec::with_capacity(groups.saturating_mul(members));
        for g in 0..groups {
            let base = random_rc_tree(
                sizes[g % sizes.len()],
                (10.0, 500.0),
                (0.05e-12, 2e-12),
                seed.wrapping_add(g as u64),
                Waveform::step(0.0, 5.0),
            );
            let values: Vec<(String, f64)> = base
                .circuit
                .elements()
                .iter()
                .filter_map(|e| match e {
                    Element::Resistor { name, ohms, .. } => Some((name.clone(), *ohms)),
                    Element::Capacitor { name, farads, .. } => Some((name.clone(), *farads)),
                    _ => None,
                })
                .collect();
            for m in 0..members {
                let mut circuit = base.circuit.clone();
                // Member 0 is the donor verbatim; the rest scale every
                // R/C into [0.75, 1.25)× so each hash is unique.
                if m > 0 {
                    for (k, (name, v)) in values.iter().enumerate() {
                        let u = unit_mix(
                            seed ^ 0x5eed_ba7c,
                            ((g as u64) << 40) | ((m as u64) << 16) | k as u64,
                        );
                        circuit
                            .set_value(name, v * (0.75 + 0.5 * u))
                            .expect("perturbing a known element");
                    }
                }
                nets.push(NetSpec {
                    name: format!("g{g:03}n{m:05}"),
                    circuit,
                    output: base.output,
                });
            }
        }
        Design {
            name: format!("groups-{groups}x{members}"),
            nets,
            parse_time: start.elapsed(),
        }
    }

    /// The nets, in reporting order.
    pub fn nets(&self) -> &[NetSpec] {
        &self.nets
    }

    /// Mutable access to one net by name (ECO edits go through here).
    pub fn net_mut(&mut self, name: &str) -> Option<&mut NetSpec> {
        self.nets.iter_mut().find(|n| n.name == name)
    }

    /// Renders the design as a multi-net deck
    /// ([`parse_multi_deck`]-compatible): one `* NET <name>` header plus
    /// the net's own deck per member. Round-trips through
    /// [`Design::from_deck`] for nets whose observation node follows the
    /// default convention (`out` or the highest-numbered node).
    pub fn to_multi_deck(&self) -> String {
        let mut out = String::new();
        for net in &self.nets {
            out.push_str(&format!("* NET {}\n", net.name));
            out.push_str(&net.circuit.to_deck());
        }
        out
    }

    /// Number of nets.
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Whether the design has no nets.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Replaces the net named `name` (an ECO-style edit), returning `true`
    /// if it existed.
    pub fn replace_net(&mut self, name: &str, circuit: Circuit, output: NodeId) -> bool {
        match self.nets.iter_mut().find(|n| n.name == name) {
            Some(net) => {
                net.circuit = circuit;
                net.output = output;
                true
            }
            None => false,
        }
    }
}

/// A net as the solver will actually see it: optionally RC-chain-reduced
/// (see [`awe_circuit::reduce`]), with the cache and pattern keys derived
/// from the *solve* circuit. Built by [`prepare_net`]; every layer that
/// keys caches for a reduce-aware run (the batch engine, the serve
/// sessions) must go through this so their keys agree byte-for-byte.
#[derive(Clone, Debug)]
pub struct PreparedNet {
    /// The reduction outcome; `None` when reduction is disabled, so the
    /// original circuit solves untouched.
    pub reduced: Option<Reduced>,
    /// Observation node id within the solve circuit (the reduction
    /// preserves it; its *name* is unchanged).
    pub output: NodeId,
    /// Result-cache key. With reduction enabled this hashes the reduced
    /// circuit and mixes in the reduce configuration, so toggling the
    /// flag or moving the tolerance never serves a stale cached result;
    /// disabled, it equals [`NetSpec::hash`] exactly.
    pub hash: u64,
    /// Topology pattern key of the solve circuit (deliberately unsalted:
    /// a reduced net sharing a topology with an unreduced one sharing
    /// one symbolic analysis is correct, the pattern is value-free).
    pub pattern: u64,
}

impl PreparedNet {
    /// The circuit the solver should run on: the reduced rewrite when
    /// one exists, else `original`.
    pub fn circuit<'a>(&'a self, original: &'a Circuit) -> &'a Circuit {
        self.reduced.as_ref().map_or(original, |r| &r.circuit)
    }
}

/// Prepares one net for solving under the given reduction config: runs
/// the chain-reduction pass when enabled (preserving the observation
/// node) and derives the cache/pattern keys from whatever circuit will
/// actually be solved.
pub fn prepare_net(spec: &NetSpec, reduce_opts: &ReduceOptions) -> PreparedNet {
    if !reduce_opts.enabled {
        return PreparedNet {
            reduced: None,
            output: spec.output,
            hash: spec.hash(),
            pattern: spec.pattern_key(),
        };
    }
    let reduced = awe_circuit::reduce(&spec.circuit, &[spec.output], reduce_opts);
    let output = reduced.map_node(spec.output).unwrap_or(spec.output);
    let hash = structural_hash(&reduced.circuit, output) ^ reduce_salt(reduce_opts);
    let pattern = pattern_key(&reduced.circuit);
    PreparedNet {
        reduced: Some(reduced),
        output,
        hash,
        pattern,
    }
}

/// Just the `(cache key, pattern key)` pair of [`prepare_net`], for
/// layers (like the serve sessions' dirty tracking) that need keys
/// without holding the reduced circuit.
pub fn net_keys(spec: &NetSpec, reduce_opts: &ReduceOptions) -> (u64, u64) {
    let prepared = prepare_net(spec, reduce_opts);
    (prepared.hash, prepared.pattern)
}

/// Deterministic value jitter in `[0, 1)` (splitmix-style finalizer):
/// enough to make every perturbed hash unique without touching topology.
fn unit_mix(seed: u64, k: u64) -> f64 {
    let mut x = seed ^ k.wrapping_mul(0x9e3779b97f4a7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51afd7ed558ccd);
    x ^= x >> 33;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Cache-key salt for a reduction config: any tolerance change moves it.
fn reduce_salt(opts: &ReduceOptions) -> u64 {
    fnv1a(b"awe-reduce-v1") ^ fnv1a(&opts.tolerance.to_bits().to_le_bytes())
}

/// Default observation node: `out` if the deck names one, else the
/// highest-numbered node.
fn default_output(circuit: &Circuit) -> NodeId {
    circuit
        .find_node("out")
        .unwrap_or_else(|| circuit.num_nodes().saturating_sub(1))
}

/// Structural hash of a net: invariant under element reordering and node
/// *id* renumbering (ids are insertion-order artifacts; names are
/// structure), sensitive to any element value, terminal, waveform,
/// initial-condition, or observation-node change.
///
/// Each element is rendered to a canonical card (names, node names,
/// shortest-round-trip value formatting) and FNV-1a hashed; the per-card
/// hashes are combined with wrapping addition, which is
/// permutation-invariant. The observation node's name seeds the
/// accumulator so the same circuit observed elsewhere caches separately.
pub fn structural_hash(circuit: &Circuit, output: NodeId) -> u64 {
    let mut acc = fnv1a(b"awe-batch-net-v2").wrapping_add(fnv1a(
        circuit
            .node_name(output.min(circuit.num_nodes().saturating_sub(1)))
            .as_bytes(),
    ));
    for e in circuit.elements() {
        acc = acc.wrapping_add(canonical_card_hash(circuit, e));
    }
    acc
}

/// Topology-only pattern key of a net: like [`structural_hash`] but with
/// every element *value* (resistances, capacitances, gains, waveforms,
/// initial conditions) excluded — only the element kind and its terminal
/// node names contribute. Two nets with equal keys assemble MNA systems
/// with the same unknown layout and the same `G̃` sparsity structure, so
/// one symbolic LU analysis serves them all; the numeric values are free
/// to differ (that is the factor-once, solve-many premise). The
/// observation node does not matter to the factorization and is excluded
/// too.
///
/// The key is advisory: a stale or colliding key costs one rejected
/// refactorization (the numeric layer fingerprints the actual pattern and
/// falls back to a cold factor), never a wrong answer.
pub fn pattern_key(circuit: &Circuit) -> u64 {
    let mut acc = fnv1a(b"awe-batch-pattern-v2");
    for e in circuit.elements() {
        acc = acc.wrapping_add(card_hash(circuit, e, false));
    }
    acc
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = CardHash::new();
    h.bytes_raw(bytes);
    h.finish()
}

/// Streaming FNV-1a over one element card. The earlier implementation
/// rendered each card to a `String` and hashed the text — on a 100k-net
/// design that is hundreds of thousands of heap allocations before the
/// first solve, and formatting f64s dominates the hash cost. This hashes
/// the same information (kind tag, names, terminal node names, raw value
/// bits) straight out of the element, allocation-free. Field terminators
/// keep the encoding prefix-free, so `("ab", "c")` and `("a", "bc")`
/// cannot collide the way naive concatenation would.
struct CardHash(u64);

impl CardHash {
    fn new() -> Self {
        CardHash(0xcbf29ce484222325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }

    fn bytes_raw(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    /// A delimited string field.
    fn str(&mut self, s: &str) {
        self.bytes_raw(s.as_bytes());
        self.byte(0xff);
    }

    /// A value field: the f64's bit pattern. Bit-level hashing keeps the
    /// old text-based equivalence (two elements with the same f64 hash
    /// the same) while distinguishing everything `{}` formatting did.
    fn f64(&mut self, v: f64) {
        self.bytes_raw(&v.to_bits().to_le_bytes());
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.byte(1);
                self.f64(x);
            }
            None => self.byte(0),
        }
    }

    fn waveform(&mut self, w: &Waveform) {
        for &(t, v) in w.points() {
            self.f64(t);
            self.f64(v);
        }
        self.byte(0xfe);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Per-card hash with values included: the [`structural_hash`] unit.
fn canonical_card_hash(c: &Circuit, e: &Element) -> u64 {
    card_hash(c, e, true)
}

/// Hash of one element card: kind tag, element name, terminal node
/// *names* (ids are insertion-order artifacts), and — when `values` is
/// set — every electrical value, waveform, and initial condition.
fn card_hash(c: &Circuit, e: &Element, values: bool) -> u64 {
    let mut h = CardHash::new();
    let node = |h: &mut CardHash, id: &NodeId| h.str(c.node_name(*id));
    match e {
        Element::Resistor { name, a, b, ohms } => {
            h.byte(b'R');
            h.str(name);
            node(&mut h, a);
            node(&mut h, b);
            if values {
                h.f64(*ohms);
            }
        }
        Element::Capacitor {
            name,
            a,
            b,
            farads,
            initial_voltage,
        } => {
            h.byte(b'C');
            h.str(name);
            node(&mut h, a);
            node(&mut h, b);
            if values {
                h.f64(*farads);
                h.opt_f64(*initial_voltage);
            }
        }
        Element::Inductor {
            name,
            a,
            b,
            henries,
            initial_current,
        } => {
            h.byte(b'L');
            h.str(name);
            node(&mut h, a);
            node(&mut h, b);
            if values {
                h.f64(*henries);
                h.opt_f64(*initial_current);
            }
        }
        Element::VoltageSource {
            name,
            pos,
            neg,
            waveform,
        } => {
            h.byte(b'V');
            h.str(name);
            node(&mut h, pos);
            node(&mut h, neg);
            if values {
                h.waveform(waveform);
            }
        }
        Element::CurrentSource {
            name,
            from,
            to,
            waveform,
        } => {
            h.byte(b'I');
            h.str(name);
            node(&mut h, from);
            node(&mut h, to);
            if values {
                h.waveform(waveform);
            }
        }
        Element::Vccs {
            name,
            from,
            to,
            cpos,
            cneg,
            gm,
        } => {
            h.byte(b'G');
            h.str(name);
            node(&mut h, from);
            node(&mut h, to);
            node(&mut h, cpos);
            node(&mut h, cneg);
            if values {
                h.f64(*gm);
            }
        }
        Element::Vcvs {
            name,
            pos,
            neg,
            cpos,
            cneg,
            gain,
        } => {
            h.byte(b'E');
            h.str(name);
            node(&mut h, pos);
            node(&mut h, neg);
            node(&mut h, cpos);
            node(&mut h, cneg);
            if values {
                h.f64(*gain);
            }
        }
        Element::Cccs {
            name,
            from,
            to,
            control,
            gain,
        } => {
            h.byte(b'F');
            h.str(name);
            node(&mut h, from);
            node(&mut h, to);
            h.str(control);
            if values {
                h.f64(*gain);
            }
        }
        Element::Ccvs {
            name,
            pos,
            neg,
            control,
            r,
        } => {
            h.byte(b'H');
            h.str(name);
            node(&mut h, pos);
            node(&mut h, neg);
            h.str(control);
            if values {
                h.f64(*r);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use awe_circuit::GROUND;

    type Card = Box<dyn Fn(&mut Circuit)>;

    fn stage(order: &[usize]) -> (Circuit, NodeId) {
        // Builds the same two-stage RC net with elements added in the
        // order given by `order` (a permutation of 0..3).
        let cards: Vec<Card> = vec![
            Box::new(|c: &mut Circuit| {
                let (i, _) = (c.node("in"), c.node("n1"));
                c.add_vsource("V1", i, GROUND, Waveform::step(0.0, 5.0))
                    .unwrap();
            }),
            Box::new(|c: &mut Circuit| {
                let (i, n1) = (c.node("in"), c.node("n1"));
                c.add_resistor("R1", i, n1, 1e3).unwrap();
            }),
            Box::new(|c: &mut Circuit| {
                let n1 = c.node("n1");
                c.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
            }),
        ];
        let mut c = Circuit::new();
        for &k in order {
            cards[k](&mut c);
        }
        let out = c.node("n1");
        (c, out)
    }

    #[test]
    fn hash_invariant_under_element_and_node_order() {
        let (c1, o1) = stage(&[0, 1, 2]);
        let (c2, o2) = stage(&[2, 1, 0]);
        // Node ids differ (n1 first vs in first), element order differs —
        // the structural hash must not.
        assert_eq!(structural_hash(&c1, o1), structural_hash(&c2, o2));
    }

    #[test]
    fn hash_sensitive_to_values_and_output() {
        let (c1, o1) = stage(&[0, 1, 2]);
        let mut c2 = Circuit::new();
        let i = c2.node("in");
        let n1 = c2.node("n1");
        c2.add_vsource("V1", i, GROUND, Waveform::step(0.0, 5.0))
            .unwrap();
        c2.add_resistor("R1", i, n1, 1.001e3).unwrap(); // value edit
        c2.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
        assert_ne!(structural_hash(&c1, o1), structural_hash(&c2, n1));
        // Same circuit, different observation point.
        assert_ne!(
            structural_hash(&c1, o1),
            structural_hash(&c1, c1.find_node("in").unwrap())
        );
    }

    #[test]
    fn pattern_key_ignores_values_not_topology() {
        let (c1, o1) = stage(&[0, 1, 2]);
        let mut c2 = Circuit::new();
        let i = c2.node("in");
        let n1 = c2.node("n1");
        c2.add_vsource("V1", i, GROUND, Waveform::rising_step(0.0, 3.3, 1e-9))
            .unwrap();
        c2.add_resistor("R1", i, n1, 4.7e3).unwrap();
        c2.add_capacitor("C1", n1, GROUND, 5e-13).unwrap();
        // Same topology, every value different: structural hashes differ,
        // pattern keys agree.
        assert_ne!(structural_hash(&c1, o1), structural_hash(&c2, n1));
        assert_eq!(pattern_key(&c1), pattern_key(&c2));
        // A topology edit (extra capacitor) changes the key.
        let mut c3 = c2.clone();
        let i3 = c3.find_node("in").unwrap();
        c3.add_capacitor("C2", i3, GROUND, 1e-12).unwrap();
        assert_ne!(pattern_key(&c2), pattern_key(&c3));
    }

    #[test]
    fn synthetic_is_deterministic() {
        let d1 = Design::synthetic(10, 42);
        let d2 = Design::synthetic(10, 42);
        for (a, b) in d1.nets().iter().zip(d2.nets()) {
            assert_eq!(a.hash(), b.hash());
        }
        let d3 = Design::synthetic(10, 43);
        assert_ne!(d1.nets()[0].hash(), d3.nets()[0].hash());
    }

    #[test]
    fn deck_design_uses_out_node() {
        let d = Design::from_deck(
            "t",
            "* NET a\nV1 in 0 STEP 0 5\nR1 in out 1k\nC1 out 0 1p\n.end",
        )
        .unwrap();
        assert_eq!(d.len(), 1);
        let net = &d.nets()[0];
        assert_eq!(net.circuit.node_name(net.output), "out");
    }

    #[test]
    fn synthetic_chains_form_one_structure_group() {
        let d = Design::synthetic_chains(12, 20, 7);
        let key = d.nets()[0].pattern_key();
        let mut hashes = std::collections::HashSet::new();
        for net in d.nets() {
            assert_eq!(net.pattern_key(), key, "{}: one group", net.name);
            assert!(hashes.insert(net.hash()), "{}: unique hash", net.name);
        }
        // Deterministic per seed.
        let d2 = Design::synthetic_chains(12, 20, 7);
        assert_eq!(d.nets()[3].hash(), d2.nets()[3].hash());
        assert_ne!(
            Design::synthetic_chains(12, 20, 8).nets()[3].hash(),
            d.nets()[3].hash()
        );
    }

    #[test]
    fn synthetic_groups_share_patterns_not_hashes() {
        let d = Design::synthetic_groups(3, 5, 17);
        assert_eq!(d.len(), 15);
        let mut hashes = std::collections::HashSet::new();
        let mut keys = std::collections::HashSet::new();
        for net in d.nets() {
            assert!(hashes.insert(net.hash()), "{}: unique hash", net.name);
            keys.insert(net.pattern_key());
        }
        assert_eq!(keys.len(), 3, "one pattern key per group");
        // Deterministic per seed.
        let d2 = Design::synthetic_groups(3, 5, 17);
        assert_eq!(d.nets()[7].hash(), d2.nets()[7].hash());
    }

    #[test]
    fn multi_deck_round_trips() {
        let d = Design::synthetic_chains(3, 5, 11);
        let rt = Design::from_deck(d.name.clone(), &d.to_multi_deck()).unwrap();
        assert_eq!(rt.len(), d.len());
        for (a, b) in d.nets().iter().zip(rt.nets()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.hash(), b.hash(), "{}: bit-identical reload", a.name);
        }
    }

    #[test]
    fn net_mut_gives_editable_access() {
        let mut d = Design::synthetic_chains(2, 4, 3);
        let before = d.nets()[1].hash();
        let net = d.net_mut("net0002").unwrap();
        net.circuit.set_value("R1", 777.0).unwrap();
        assert_ne!(d.nets()[1].hash(), before);
        assert!(d.net_mut("absent").is_none());
    }

    #[test]
    fn eco_edit_replaces_net() {
        let mut d = Design::synthetic(3, 1);
        let (c, o) = stage(&[0, 1, 2]);
        let before = d.nets()[1].hash();
        assert!(d.replace_net("net0002", c, o));
        assert_ne!(d.nets()[1].hash(), before);
        assert!(!d.replace_net("nope", Circuit::new(), 0));
    }
}
