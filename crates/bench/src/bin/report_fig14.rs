//! Prints the regenerated report for the paper experiment `fig14`.
//! See DESIGN.md §2 for the experiment index.

fn main() {
    println!("{}", awe_bench::experiments::fig14());
}
