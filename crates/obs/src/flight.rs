//! Flight recorder: snapshot the live recording without stopping it.
//!
//! The per-thread/per-session lanes are already bounded rings holding
//! the most recent [`crate::LANE_CAPACITY`] events — exactly the
//! "always-on flight recorder" shape. What a one-shot
//! [`crate::Recording`] lacks is a way to *read* that ring while the
//! recording keeps running: [`live_profile`] clones the current lanes,
//! counters and histograms into a [`Profile`] without draining anything,
//! and [`flight_trace`] renders that snapshot as a Chrome trace tagged
//! with the trigger that caused the dump (the anomalous request's id,
//! verb, session and reason), so the artifact on disk says *why* it
//! exists and which track to look at.
//!
//! The daemon's trigger policy (anomalous health event, error response,
//! latency over threshold, explicit `dump_trace` request) lives in the
//! serve crate; this module only provides the snapshot and rendering
//! primitives, plus [`crate::anomaly_count`] as the cheap trigger
//! signal — a relaxed counter bumped by [`crate::health`], so trigger
//! detection is a before/after compare, never a lane scan.

use crate::recorder::{snapshot_live, Profile};
use crate::sinks::json_escape;

/// Why a flight dump was taken — rendered into the trace as a
/// `flight_trigger` metadata event so the artifact is self-describing.
#[derive(Clone, Debug)]
pub struct FlightTrigger {
    /// Trigger class, e.g. `"anomaly"`, `"error_response"`,
    /// `"slow_request"` or `"on_demand"`.
    pub reason: String,
    /// The request id whose handling tripped the trigger (`0` = none).
    pub request: u64,
    /// The triggering request's verb.
    pub verb: String,
    /// The session the request targeted, when it targeted one.
    pub session: Option<String>,
    /// The triggering request's latency in microseconds.
    pub latency_us: u64,
}

/// Clones the live recording into a [`Profile`] without draining or
/// stopping it. `None` when no recording is active.
pub fn live_profile() -> Option<Profile> {
    snapshot_live()
}

/// Renders `profile` as Chrome trace-event JSON with a leading
/// `flight_trigger` global-instant event carrying the trigger metadata.
/// Loads anywhere [`Profile::chrome_trace`] output loads (Perfetto,
/// `chrome://tracing`).
pub fn flight_trace(profile: &Profile, trigger: &FlightTrigger) -> String {
    let mut args = vec![
        format!("\"reason\": \"{}\"", json_escape(&trigger.reason)),
        format!("\"req\": {}", trigger.request),
        format!("\"verb\": \"{}\"", json_escape(&trigger.verb)),
        format!("\"latency_us\": {}", trigger.latency_us),
    ];
    if let Some(session) = &trigger.session {
        args.push(format!("\"session\": \"{}\"", json_escape(session)));
    }
    let line = format!(
        "{{\"name\": \"flight_trigger\", \"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \
         \"tid\": 0, \"ts\": 0, \"args\": {{{}}}}}",
        args.join(", ")
    );
    profile.chrome_trace_with(&[line])
}
