//! Error types for the numeric substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra and root-finding routines.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum NumericError {
    /// A square matrix was required.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular (or numerically singular) to working precision.
    ///
    /// For AWE this typically means the circuit has no unique DC solution
    /// (paper §3.1: the A-matrix may not be singular), or the moment matrix
    /// of eq. (24) is ill-conditioned and needs frequency scaling (§3.5).
    Singular {
        /// Elimination step at which a zero (or negligible) pivot appeared.
        pivot: usize,
    },
    /// Dimension mismatch between operands.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// An iterative algorithm (QR eigen iteration, Aberth root refinement)
    /// failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The input polynomial or data set was empty or degenerate.
    Degenerate(&'static str),
    /// A numeric refactorization was handed a matrix whose sparsity
    /// pattern differs from the one recorded by the symbolic analysis.
    ///
    /// Refactorization (the "solve-many" half of the paper's §3.2 cost
    /// model) is only valid when the elimination pattern is byte-identical
    /// to the analysed one; re-run the full factorization instead.
    PatternMismatch {
        /// Fingerprint recorded at symbolic-analysis time.
        expected: u64,
        /// Fingerprint of the matrix handed to `refactor`.
        actual: u64,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            NumericError::Singular { pivot } => {
                write!(
                    f,
                    "matrix is singular to working precision at pivot {pivot}"
                )
            }
            NumericError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumericError::NoConvergence { iterations } => {
                write!(f, "iteration failed to converge after {iterations} steps")
            }
            NumericError::Degenerate(what) => write!(f, "degenerate input: {what}"),
            NumericError::PatternMismatch { expected, actual } => {
                write!(
                    f,
                    "sparsity pattern {actual:#018x} does not match the analysed pattern {expected:#018x}"
                )
            }
        }
    }
}

impl Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            NumericError::NotSquare { rows: 2, cols: 3 }.to_string(),
            "expected a square matrix, got 2x3"
        );
        assert_eq!(
            NumericError::Singular { pivot: 4 }.to_string(),
            "matrix is singular to working precision at pivot 4"
        );
        assert_eq!(
            NumericError::DimensionMismatch {
                expected: 3,
                actual: 5
            }
            .to_string(),
            "dimension mismatch: expected 3, got 5"
        );
        assert_eq!(
            NumericError::NoConvergence { iterations: 100 }.to_string(),
            "iteration failed to converge after 100 steps"
        );
        assert_eq!(
            NumericError::Degenerate("empty polynomial").to_string(),
            "degenerate input: empty polynomial"
        );
        assert_eq!(
            NumericError::PatternMismatch {
                expected: 1,
                actual: 2
            }
            .to_string(),
            "sparsity pattern 0x0000000000000002 does not match the analysed pattern 0x0000000000000001"
        );
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NumericError>();
    }
}
