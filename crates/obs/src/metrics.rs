//! Counters and log-scale histograms.
//!
//! Both are designed to live in `static` items at the instrumentation
//! site, so the hot path is a relaxed atomic op with no lookup:
//!
//! ```
//! static PATTERN_HITS: awe_obs::Counter = awe_obs::Counter::new("batch.pattern_hits");
//! PATTERN_HITS.incr();
//! ```
//!
//! A metric registers itself in a global registry the first time it is
//! touched while a recording is active (one `swap` on an `AtomicBool`,
//! then once through a mutex); [`crate::Recording::start`] resets every
//! registered metric so values never leak across sessions.
//!
//! Histogram buckets are powers of two keyed directly off the IEEE-754
//! exponent bits — not `log2().floor()`, whose rounding near bucket
//! edges would misfile values — so `bucket_bounds(bucket_index(v))`
//! brackets `v` *exactly* for every positive finite `v` (property-tested
//! in `tests/primitives.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::recorder::enabled;

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// Resets every registered counter and histogram to zero. Called by
/// [`crate::Recording::start`].
pub(crate) fn reset_registered() {
    if let Ok(counters) = COUNTERS.lock() {
        for c in counters.iter() {
            c.value.store(0, Ordering::Relaxed);
        }
    }
    if let Ok(histograms) = HISTOGRAMS.lock() {
        for h in histograms.iter() {
            h.count.store(0, Ordering::Relaxed);
            h.sum_bits.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// A monotonic counter. Construct as a `static`; updates are relaxed
/// atomic adds and no-ops while no recording is active.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter named `name` (use a dotted path, e.g.
    /// `"pool.steals"`).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n`. No-op when no recording is active.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one. No-op when no recording is active.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            if let Ok(mut reg) = COUNTERS.lock() {
                reg.push(self);
            }
        }
    }
}

/// A counter's value at [`crate::Recording::finish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// The counter's name.
    pub name: &'static str,
    /// Its accumulated value for the recording.
    pub value: u64,
}

pub(crate) fn snapshot_counters() -> Vec<CounterSnapshot> {
    let mut out: Vec<CounterSnapshot> = COUNTERS
        .lock()
        .map(|reg| {
            reg.iter()
                .map(|c| CounterSnapshot {
                    name: c.name,
                    value: c.value.load(Ordering::Relaxed),
                })
                .collect()
        })
        .unwrap_or_default();
    out.retain(|c| c.value > 0);
    out.sort_by(|x, y| x.name.cmp(y.name));
    out
}

/// Bucket count of a [`Histogram`]: one underflow bucket, 128
/// power-of-two buckets spanning `[2^-64, 2^64)`, one overflow bucket.
pub const HIST_BUCKETS: usize = 130;

/// The bucket a value lands in. Non-positive, NaN and sub-`2^-64`
/// values land in the underflow bucket (0); `2^64` and above (including
/// `+inf`) in the overflow bucket (`HIST_BUCKETS - 1`).
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    if v == f64::INFINITY {
        return HIST_BUCKETS - 1;
    }
    // Biased exponent straight from the bits: exact bucketing, immune
    // to the rounding of log2().floor() near bucket edges. Subnormals
    // read as e = -1023 and clamp into the underflow bucket.
    let e = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    if e < -64 {
        0
    } else if e > 63 {
        HIST_BUCKETS - 1
    } else {
        (e + 65) as usize
    }
}

/// The half-open range `[lo, hi)` of values bucket `i` holds. The
/// underflow bucket reports `(-inf, 2^-64)`, the overflow bucket
/// `[2^64, +inf]`.
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    assert!(i < HIST_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (f64::NEG_INFINITY, (-64f64).exp2())
    } else if i == HIST_BUCKETS - 1 {
        (64f64.exp2(), f64::INFINITY)
    } else {
        let e = i as f64 - 65.0;
        (e.exp2(), (e + 1.0).exp2())
    }
}

/// A fixed-bucket log-scale histogram (powers of two). Construct as a
/// `static`; recording is lock-free (relaxed atomics plus a CAS loop
/// for the `f64` sum) and a no-op while no recording is active.
pub struct Histogram {
    name: &'static str,
    registered: AtomicBool,
    count: AtomicU64,
    sum_bits: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    /// A new histogram named `name`.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            registered: AtomicBool::new(false),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// Records one observation. No-op when no recording is active.
    #[inline]
    pub fn record(&'static self, v: f64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            if let Ok(mut reg) = HISTOGRAMS.lock() {
                reg.push(self);
            }
        }
    }
}

/// A histogram's contents at [`crate::Recording::finish`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// The histogram's name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// `(bucket index, observations)` for every non-empty bucket, in
    /// bucket order. Decode ranges with [`bucket_bounds`].
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

pub(crate) fn snapshot_histograms() -> Vec<HistogramSnapshot> {
    let mut out: Vec<HistogramSnapshot> = HISTOGRAMS
        .lock()
        .map(|reg| {
            reg.iter()
                .map(|h| HistogramSnapshot {
                    name: h.name,
                    count: h.count.load(Ordering::Relaxed),
                    sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then_some((i, n))
                        })
                        .collect(),
                })
                .collect()
        })
        .unwrap_or_default();
    out.retain(|h| h.count > 0);
    out.sort_by(|x, y| x.name.cmp(y.name));
    out
}
