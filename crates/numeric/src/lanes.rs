//! Multi-lane sparse LU: refactor and solve up to four structurally
//! identical matrices in lockstep.
//!
//! The batch engine's tape replay executes the members of a structure
//! group against one shared [`LuSymbolic`] pattern. Replaying the numeric
//! sweep one member at a time re-reads the same `l_rows`/`u_pos` index
//! streams once per member; [`LaneLu`] instead carries [`LANE_WIDTH`]
//! value lanes side by side (lane-strided storage, `vals[idx * 4 + lane]`)
//! so one pass over the pattern serves every lane. The per-lane arithmetic
//! — update order, zero-skip guards, pivot admissibility — is exactly the
//! scalar [`SparseLu::refactor`] / [`SparseLu::solve_multi_into`]
//! sequence, so each live lane's factors and solutions are bit-identical
//! to a standalone scalar run (proven by the tests below and by the batch
//! crate's replay proptests).
//!
//! Lanes are independent: a lane whose values make a stored pivot
//! inadmissible is marked dead (its slots are neutralized to `0`/`1` so
//! the remaining sweep stays branch-light and NaN-free) and reported
//! per-lane, while its neighbors complete unperturbed — the divergence
//! hook the tape VM's scalar-fallback rule builds on.

use std::sync::Arc;

use awe_obs::Health;

use crate::error::NumericError;
use crate::sparse::SparseMatrix;
use crate::sparse_lu::{SparseLu, REFACTOR_ADMISSIBILITY, REFACTOR_REJECTED};
use crate::symbolic::{LuSymbolic, SolveScratch};

/// Number of value lanes carried by [`LaneLu`]. Four `f64` lanes fill a
/// cache line and give the compiler a fixed trip count to unroll.
pub const LANE_WIDTH: usize = 4;

/// Sparse LU values for up to [`LANE_WIDTH`] matrices sharing one
/// symbolic pattern, stored lane-strided.
///
/// Built by [`LaneLu::refactor`]; solved with
/// [`LaneLu::solve_multi_into`]; individual lanes can be copied back out
/// as scalar factors with [`LaneLu::extract`].
#[derive(Clone, Debug)]
pub struct LaneLu {
    symbolic: Arc<LuSymbolic>,
    /// Lanes that completed refactorization. Dead lanes hold zero values
    /// and unit pivots so lane-blind sweeps pass through them harmlessly.
    live: [bool; LANE_WIDTH],
    /// L values, `l_vals[idx * LANE_WIDTH + lane]`.
    l_vals: Vec<f64>,
    /// U values, `u_vals[idx * LANE_WIDTH + lane]`.
    u_vals: Vec<f64>,
    /// Pivots, `u_diag[k * LANE_WIDTH + lane]` (dead lanes: `1.0`).
    u_diag: Vec<f64>,
}

impl LaneLu {
    /// Replays the stored numeric sweep for each matrix in `mats`
    /// simultaneously, one lane per matrix.
    ///
    /// Per lane the result is bit-identical to
    /// `SparseLu::refactor(symbolic, mats[lane])`: the same update order,
    /// the same `!= 0.0` skip guards, the same admissibility test. The
    /// returned vector holds one `Result` per input matrix; an `Err`
    /// lane (pattern mismatch, or an inadmissible pivot at some column)
    /// is dead in the returned factor and yields `None` from
    /// [`LaneLu::extract`].
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty or holds more than [`LANE_WIDTH`]
    /// matrices.
    pub fn refactor(
        symbolic: &Arc<LuSymbolic>,
        mats: &[&SparseMatrix],
    ) -> (LaneLu, Vec<Result<(), NumericError>>) {
        assert!(
            !mats.is_empty() && mats.len() <= LANE_WIDTH,
            "1..={LANE_WIDTH} lanes required"
        );
        let mut sp = awe_obs::span("lu.refactor_lanes");
        let s = &**symbolic;
        let n = s.n;
        let mut live = [false; LANE_WIDTH];
        let mut outcomes: Vec<Result<(), NumericError>> = Vec::with_capacity(mats.len());
        for (lane, a) in mats.iter().enumerate() {
            match s.check_matches(a) {
                Ok(()) => {
                    live[lane] = true;
                    outcomes.push(Ok(()));
                }
                Err(e) => outcomes.push(Err(e)),
            }
        }

        let mut l_vals = vec![0.0f64; s.l_rows.len() * LANE_WIDTH];
        let mut u_vals = vec![0.0f64; s.u_pos.len() * LANE_WIDTH];
        let mut u_diag = vec![1.0f64; n * LANE_WIDTH];
        // Dense accumulator over original rows, lane-strided.
        let mut x = vec![0.0f64; n * LANE_WIDTH];

        for k in 0..n {
            // Scatter A(:, q[k]) per live lane.
            for (lane, a) in mats.iter().enumerate() {
                if !live[lane] {
                    continue;
                }
                let (a_rows, a_vals) = a.col(s.q[k]);
                for (&i, &v) in a_rows.iter().zip(a_vals) {
                    x[i * LANE_WIDTH + lane] = v;
                }
            }
            // Replay updates off the stored U pattern (ascending pivot
            // order), all lanes in one pattern pass.
            for idx in s.u_ptr[k]..s.u_ptr[k + 1] {
                let m = s.u_pos[idx];
                let pr = s.prow[m] * LANE_WIDTH;
                let xm = [x[pr], x[pr + 1], x[pr + 2], x[pr + 3]];
                u_vals[idx * LANE_WIDTH..idx * LANE_WIDTH + LANE_WIDTH].copy_from_slice(&xm);
                if xm == [0.0; LANE_WIDTH] {
                    continue;
                }
                for t in s.l_ptr[m]..s.l_ptr[m + 1] {
                    let r = s.l_rows[t] * LANE_WIDTH;
                    let lb = t * LANE_WIDTH;
                    // Per-lane zero guards preserved: a skipped update is
                    // skipped in the scalar sweep too.
                    if xm[0] != 0.0 {
                        x[r] -= xm[0] * l_vals[lb];
                    }
                    if xm[1] != 0.0 {
                        x[r + 1] -= xm[1] * l_vals[lb + 1];
                    }
                    if xm[2] != 0.0 {
                        x[r + 2] -= xm[2] * l_vals[lb + 2];
                    }
                    if xm[3] != 0.0 {
                        x[r + 3] -= xm[3] * l_vals[lb + 3];
                    }
                }
            }
            // Stored pivot row, new values: per-lane admissibility.
            let piv_row = s.prow[k];
            for lane in 0..LANE_WIDTH {
                if !live[lane] {
                    continue;
                }
                let piv = x[piv_row * LANE_WIDTH + lane];
                let mut col_max = piv.abs();
                for t in s.l_ptr[k]..s.l_ptr[k + 1] {
                    col_max = col_max.max(x[s.l_rows[t] * LANE_WIDTH + lane].abs());
                }
                if piv == 0.0 || piv.abs() < REFACTOR_ADMISSIBILITY * col_max {
                    // Lane dies here; clean its accumulator slots so the
                    // remaining sweep sees zeros (and skips via guards).
                    for idx in s.u_ptr[k]..s.u_ptr[k + 1] {
                        x[s.prow[s.u_pos[idx]] * LANE_WIDTH + lane] = 0.0;
                    }
                    x[piv_row * LANE_WIDTH + lane] = 0.0;
                    for t in s.l_ptr[k]..s.l_ptr[k + 1] {
                        x[s.l_rows[t] * LANE_WIDTH + lane] = 0.0;
                    }
                    live[lane] = false;
                    outcomes[lane] = Err(NumericError::Singular { pivot: k });
                    REFACTOR_REJECTED.incr();
                    awe_obs::health(Health::RefactorRejected { pivot: k });
                    continue;
                }
                for t in s.l_ptr[k]..s.l_ptr[k + 1] {
                    l_vals[t * LANE_WIDTH + lane] = x[s.l_rows[t] * LANE_WIDTH + lane] / piv;
                }
                u_diag[k * LANE_WIDTH + lane] = piv;
            }
            // Reset exactly this column's pattern rows, all lanes.
            for idx in s.u_ptr[k]..s.u_ptr[k + 1] {
                let r = s.prow[s.u_pos[idx]] * LANE_WIDTH;
                x[r..r + LANE_WIDTH].fill(0.0);
            }
            let r = piv_row * LANE_WIDTH;
            x[r..r + LANE_WIDTH].fill(0.0);
            for t in s.l_ptr[k]..s.l_ptr[k + 1] {
                let r = s.l_rows[t] * LANE_WIDTH;
                x[r..r + LANE_WIDTH].fill(0.0);
            }
        }

        // Scrub values of lanes that died mid-sweep: their early columns
        // hold a valid partial factor that must not leak into lane-blind
        // solves. (Dead-on-arrival lanes are already all zeros/ones.)
        for lane in 0..LANE_WIDTH {
            if live[lane] {
                continue;
            }
            for v in l_vals[lane..].iter_mut().step_by(LANE_WIDTH) {
                *v = 0.0;
            }
            for v in u_vals[lane..].iter_mut().step_by(LANE_WIDTH) {
                *v = 0.0;
            }
            for v in u_diag[lane..].iter_mut().step_by(LANE_WIDTH) {
                *v = 1.0;
            }
        }

        if sp.is_live() {
            sp.note(n as f64, mats.len() as f64);
        }
        (
            LaneLu {
                symbolic: Arc::clone(symbolic),
                live,
                l_vals,
                u_vals,
                u_diag,
            },
            outcomes,
        )
    }

    /// The shared symbolic pattern.
    #[inline]
    pub fn symbolic(&self) -> &Arc<LuSymbolic> {
        &self.symbolic
    }

    /// Dimension of the factored matrices.
    #[inline]
    pub fn dim(&self) -> usize {
        self.symbolic.n
    }

    /// Whether `lane` holds a completed factorization.
    #[inline]
    pub fn is_live(&self, lane: usize) -> bool {
        self.live[lane]
    }

    /// Number of live lanes.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Copies one live lane out as a scalar [`SparseLu`] (bit-identical to
    /// the scalar refactorization of that lane's matrix); `None` for dead
    /// lanes.
    pub fn extract(&self, lane: usize) -> Option<SparseLu> {
        if lane >= LANE_WIDTH || !self.live[lane] {
            return None;
        }
        let gather = |vals: &[f64]| -> Vec<f64> {
            vals[lane..].iter().step_by(LANE_WIDTH).copied().collect()
        };
        Some(SparseLu::from_parts(
            Arc::clone(&self.symbolic),
            gather(&self.l_vals),
            gather(&self.u_vals),
            gather(&self.u_diag),
        ))
    }

    /// Blocked multi-RHS solve across all lanes: `rhs` holds
    /// [`LANE_WIDTH`] consecutive blocks of `nrhs × n` (the scalar
    /// [`SparseLu::solve_multi_into`] layout, one block per lane), and
    /// `out` receives the solutions in the same layout.
    ///
    /// Each live lane's column results are bit-identical to that lane's
    /// scalar `solve_multi_into`. Dead lanes pass through as zeros
    /// (provide zero RHS blocks for them).
    ///
    /// # Errors
    ///
    /// [`NumericError::DimensionMismatch`] if
    /// `rhs.len() != dim() * nrhs * LANE_WIDTH`.
    pub fn solve_multi_into(
        &self,
        rhs: &[f64],
        nrhs: usize,
        scratch: &mut SolveScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), NumericError> {
        let s = &*self.symbolic;
        let n = s.n;
        if rhs.len() != n * nrhs * LANE_WIDTH {
            return Err(NumericError::DimensionMismatch {
                expected: n * nrhs * LANE_WIDTH,
                actual: rhs.len(),
            });
        }
        if nrhs == 0 {
            out.clear();
            return Ok(());
        }
        let c_total = nrhs * LANE_WIDTH;
        let SolveScratch { w, y } = scratch;
        // Interleave: w[i*C + lane*nrhs + c] = lane's RHS column c, row i.
        w.clear();
        w.resize(n * c_total, 0.0);
        for lane in 0..LANE_WIDTH {
            let block = &rhs[lane * n * nrhs..(lane + 1) * n * nrhs];
            for c in 0..nrhs {
                let col = &block[c * n..(c + 1) * n];
                for (i, &v) in col.iter().enumerate() {
                    w[i * c_total + lane * nrhs + c] = v;
                }
            }
        }
        y.clear();
        y.resize(n * c_total, 0.0);
        // Forward: one pattern pass serves every lane and column.
        for k in 0..n {
            let pr = s.prow[k];
            y[k * c_total..(k + 1) * c_total].copy_from_slice(&w[pr * c_total..(pr + 1) * c_total]);
            for idx in s.l_ptr[k]..s.l_ptr[k + 1] {
                let r = s.l_rows[idx];
                let lb = idx * LANE_WIDTH;
                let lv = [
                    self.l_vals[lb],
                    self.l_vals[lb + 1],
                    self.l_vals[lb + 2],
                    self.l_vals[lb + 3],
                ];
                for lane in 0..LANE_WIDTH {
                    for c in 0..nrhs {
                        let t = y[k * c_total + lane * nrhs + c];
                        if t != 0.0 {
                            w[r * c_total + lane * nrhs + c] -= t * lv[lane];
                        }
                    }
                }
            }
        }
        // Back: stripes of y only; u_pos entries are all < k.
        for k in (0..n).rev() {
            let (lo, hi) = y.split_at_mut(k * c_total);
            let yk = &mut hi[..c_total];
            let db = k * LANE_WIDTH;
            let d = [
                self.u_diag[db],
                self.u_diag[db + 1],
                self.u_diag[db + 2],
                self.u_diag[db + 3],
            ];
            for lane in 0..LANE_WIDTH {
                for c in 0..nrhs {
                    yk[lane * nrhs + c] /= d[lane];
                }
            }
            for idx in s.u_ptr[k]..s.u_ptr[k + 1] {
                let p = s.u_pos[idx];
                let ub = idx * LANE_WIDTH;
                let uv = [
                    self.u_vals[ub],
                    self.u_vals[ub + 1],
                    self.u_vals[ub + 2],
                    self.u_vals[ub + 3],
                ];
                for lane in 0..LANE_WIDTH {
                    for c in 0..nrhs {
                        let zk = yk[lane * nrhs + c];
                        if zk != 0.0 {
                            lo[p * c_total + lane * nrhs + c] -= zk * uv[lane];
                        }
                    }
                }
            }
        }
        // De-interleave, undoing the column permutation per lane/RHS.
        out.clear();
        out.resize(n * c_total, 0.0);
        for k in 0..n {
            let dst = s.q[k];
            for lane in 0..LANE_WIDTH {
                for c in 0..nrhs {
                    out[lane * n * nrhs + c * n + dst] = y[k * c_total + lane * nrhs + c];
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::sparse_lu::SparseLu;

    /// A small MNA-like pattern with four value variants sharing it.
    fn family() -> (Arc<LuSymbolic>, Vec<SparseMatrix>) {
        let mut mats = Vec::new();
        for v in 0..4u32 {
            let f = 1.0 + 0.125 * f64::from(v);
            let d = Matrix::from_rows(&[
                &[4.0 * f, 1.0, 0.0, 2.0],
                &[1.0, 5.0 / f, 1.0, 0.0],
                &[0.0, 1.0, 6.0 * f, 1.0],
                &[2.0, 0.0, 1.0, 7.0 + f],
            ]);
            mats.push(SparseMatrix::from_dense(&d));
        }
        let sym = SparseLu::factor(&mats[0], None).unwrap().symbolic().clone();
        (sym, mats)
    }

    #[test]
    fn lane_refactor_is_bitwise_scalar_refactor() {
        let (sym, mats) = family();
        let refs: Vec<&SparseMatrix> = mats.iter().collect();
        let (lanes, outcomes) = LaneLu::refactor(&sym, &refs);
        assert!(outcomes.iter().all(Result::is_ok));
        assert_eq!(lanes.live_count(), 4);
        for (lane, m) in mats.iter().enumerate() {
            let scalar = SparseLu::refactor(&sym, m).unwrap();
            let got = lanes.extract(lane).unwrap();
            let (gl, gu, gd) = got.parts();
            let (sl, su, sd) = scalar.parts();
            assert_eq!(gl, sl, "lane {lane} L");
            assert_eq!(gu, su, "lane {lane} U");
            assert_eq!(gd, sd, "lane {lane} diag");
        }
    }

    #[test]
    fn partial_blocks_and_any_lane_position() {
        let (sym, mats) = family();
        for width in 1..=3usize {
            let refs: Vec<&SparseMatrix> = mats.iter().take(width).collect();
            let (lanes, outcomes) = LaneLu::refactor(&sym, &refs);
            assert_eq!(outcomes.len(), width);
            assert_eq!(lanes.live_count(), width);
            assert!(lanes.extract(width).is_none(), "lane {width} unoccupied");
            for lane in 0..width {
                let scalar = SparseLu::refactor(&sym, &mats[lane]).unwrap();
                assert_eq!(lanes.extract(lane).unwrap().parts(), scalar.parts());
            }
        }
    }

    #[test]
    fn dead_lane_is_isolated_and_reported() {
        let (sym, mut mats) = family();
        // Lane 2's pivot row value collapses: same pattern, inadmissible
        // pivot — exactly what the scalar refactor rejects.
        mats[2] = SparseMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1e-30),
                (0, 1, 1.0),
                (0, 3, 2.0),
                (1, 0, 1.0),
                (1, 1, 5.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 6.0),
                (2, 3, 1.0),
                (3, 0, 2.0),
                (3, 2, 1.0),
                (3, 3, 7.5),
            ],
        );
        assert!(matches!(
            SparseLu::refactor(&sym, &mats[2]),
            Err(NumericError::Singular { .. })
        ));
        let refs: Vec<&SparseMatrix> = mats.iter().collect();
        let (lanes, outcomes) = LaneLu::refactor(&sym, &refs);
        assert!(matches!(outcomes[2], Err(NumericError::Singular { .. })));
        assert!(!lanes.is_live(2));
        assert!(lanes.extract(2).is_none());
        for lane in [0usize, 1, 3] {
            assert!(outcomes[lane].is_ok());
            let scalar = SparseLu::refactor(&sym, &mats[lane]).unwrap();
            assert_eq!(
                lanes.extract(lane).unwrap().parts(),
                scalar.parts(),
                "lane {lane} must be untouched by lane 2's failure"
            );
        }
    }

    #[test]
    fn lane_solve_is_bitwise_scalar_solve() {
        let (sym, mats) = family();
        let refs: Vec<&SparseMatrix> = mats.iter().collect();
        let (lanes, _) = LaneLu::refactor(&sym, &refs);
        let n = 4;
        let nrhs = 3;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let rhs: Vec<f64> = (0..n * nrhs * LANE_WIDTH).map(|_| next()).collect();
        let mut scratch = SolveScratch::new();
        let mut out = Vec::new();
        lanes
            .solve_multi_into(&rhs, nrhs, &mut scratch, &mut out)
            .unwrap();
        for lane in 0..LANE_WIDTH {
            let scalar = SparseLu::refactor(&sym, &mats[lane]).unwrap();
            let block = &rhs[lane * n * nrhs..(lane + 1) * n * nrhs];
            let mut ss = SolveScratch::new();
            let mut want = Vec::new();
            scalar
                .solve_multi_into(block, nrhs, &mut ss, &mut want)
                .unwrap();
            assert_eq!(
                &out[lane * n * nrhs..(lane + 1) * n * nrhs],
                &want[..],
                "lane {lane}"
            );
        }
        // Shape errors and the nrhs == 0 no-op.
        assert!(lanes
            .solve_multi_into(&rhs[1..], nrhs, &mut scratch, &mut out)
            .is_err());
        lanes
            .solve_multi_into(&[], 0, &mut scratch, &mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn dead_lanes_pass_zeros_through_solves() {
        let (sym, mats) = family();
        let refs: Vec<&SparseMatrix> = mats.iter().take(2).collect();
        let (lanes, _) = LaneLu::refactor(&sym, &refs);
        let n = 4;
        let rhs = vec![1.0; n * LANE_WIDTH];
        let mut scratch = SolveScratch::new();
        let mut out = Vec::new();
        lanes
            .solve_multi_into(&rhs, 1, &mut scratch, &mut out)
            .unwrap();
        for lane in 2..LANE_WIDTH {
            for &v in &out[lane * n..(lane + 1) * n] {
                assert!(v.is_finite(), "dead lane output must stay finite");
            }
        }
        // Live lanes unaffected by the garbage RHS in dead lanes.
        let scalar = SparseLu::refactor(&sym, &mats[0]).unwrap();
        let want = scalar.solve(&rhs[..n]).unwrap();
        assert_eq!(&out[..n], &want[..]);
    }
}
