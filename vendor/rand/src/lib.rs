//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in containers without network access or a crates.io
//! mirror, so the external `rand` dependency is replaced by this std-only
//! crate exposing the small API subset the workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`] for `f64`/`u64`/`u32`/`bool`,
//! * [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ (public domain reference algorithm), which
//! is deterministic per seed, fast, and of more than adequate quality for
//! workload generation and tests. It intentionally does **not** promise the
//! same streams as the real `rand` crate — workspace code only relies on
//! determinism per seed, never on specific values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Trait for seedable generators (API-compatible subset of `rand`'s).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// Core random-number-generator trait (API-compatible subset of `rand`'s).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is the one forbidden state.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as the real rand crate documents.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }
}

/// A non-deterministically seeded generator (seeded from the system clock;
/// adequate for the rare "any seed" call sites).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    rngs::StdRng::seed_from_u64(nanos ^ (std::process::id() as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let k = rng.gen_range(0..=5usize);
            assert!(k <= 5);
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
