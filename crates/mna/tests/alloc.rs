//! Counting-allocator proof of the zero-allocation moment recursion: with
//! a warm [`MomentWorkspace`], generating *more* moments costs *zero*
//! additional heap allocations — every per-moment buffer comes from the
//! recycled pool.
//!
//! This file holds exactly one `#[test]` on purpose: the test harness
//! runs tests of one binary concurrently, and a second test's allocations
//! would pollute the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use awe_circuit::generators::rc_line;
use awe_circuit::Waveform;
use awe_mna::{MnaSystem, MomentEngine, MomentWorkspace};

/// Passes through to the system allocator, counting allocation events
/// (alloc/realloc/alloc_zeroed) while armed.
struct CountingAlloc;

static EVENTS: AtomicUsize = AtomicUsize::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocation events of one full decomposition with the given workspace.
fn count_decompose(engine: &MomentEngine, ws: &mut MomentWorkspace, moments: usize) -> usize {
    EVENTS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let dec = engine.decompose_with(ws, moments).expect("solvable");
    ARMED.store(false, Ordering::SeqCst);
    let events = EVENTS.load(Ordering::SeqCst);
    ws.recycle(dec);
    events
}

#[test]
fn warm_workspace_moment_recursion_allocates_nothing_per_moment() {
    let g = rc_line(40, 120.0, 0.8e-12, Waveform::step(0.0, 5.0));
    let sys = MnaSystem::build(&g.circuit).expect("builds");
    let engine = MomentEngine::new(&sys).expect("factors");
    let mut ws = MomentWorkspace::new();

    // Warm-up at the *largest* moment count so the pool holds enough
    // recycled vectors for every later run.
    for _ in 0..2 {
        let dec = engine.decompose_with(&mut ws, 40).expect("solvable");
        ws.recycle(dec);
    }

    let short = count_decompose(&engine, &mut ws, 8);
    let long = count_decompose(&engine, &mut ws, 40);

    // The fixed per-decomposition overhead (piece bookkeeping, the
    // container of the moment sequence) may allocate; the 32 extra
    // moments must not add a single event on top of it.
    assert_eq!(
        long, short,
        "per-moment allocations detected: {short} events for 8 moments, \
         {long} for 40"
    );

    // And a steady state really is steady: a repeat run costs exactly the
    // same number of events.
    let again = count_decompose(&engine, &mut ws, 40);
    assert_eq!(long, again, "warm runs must be allocation-stable");
}
