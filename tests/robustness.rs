//! Robustness and failure-injection tests: malformed decks, degenerate
//! circuits, and hostile inputs must produce errors, never panics or
//! wrong-but-plausible answers.

use proptest::prelude::*;

use awesim::circuit::{parse_deck, Circuit, Waveform, GROUND};
use awesim::core::{AweEngine, AweError};
use awesim::mna::MnaError;
use awesim::sim::{simulate, TransientOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The deck parser never panics, whatever bytes arrive.
    #[test]
    fn parser_never_panics(deck in "\\PC{0,200}") {
        let _ = parse_deck(&deck);
    }

    /// Structured-looking garbage either parses or errors cleanly.
    #[test]
    fn parser_handles_structured_garbage(
        kind in "[RCLVIGEFHQXZ]",
        a in "[a-z0-9]{1,4}",
        b in "[a-z0-9]{1,4}",
        value in "[0-9a-zA-Z.+-]{1,10}",
    ) {
        let deck = format!("{kind}1 {a} {b} {value}");
        let _ = parse_deck(&deck);
    }
}

/// A capacitor-only island (a §3.1 floating node) resolves by charge
/// conservation: the capacitor divider answer, in AWE and in the
/// simulator alike.
#[test]
fn floating_island_charge_conservation() {
    let mut ckt = Circuit::new();
    let n1 = ckt.node("n1");
    let n2 = ckt.node("n2");
    ckt.add_vsource("V1", n1, GROUND, Waveform::step(0.0, 1.0))
        .unwrap();
    ckt.add_capacitor("C1", n1, n2, 1e-12).unwrap();
    ckt.add_capacitor("C2", n2, GROUND, 3e-12).unwrap();
    let engine = AweEngine::new(&ckt).unwrap();
    let approx = engine.approximate(n2, 1).unwrap();
    // Divider: 1·C1/(C1+C2) = 0.25, immediately and forever.
    assert!((approx.final_value() - 0.25).abs() < 1e-6);
    assert!((approx.eval(1e-12) - 0.25).abs() < 1e-4);
    let sim = simulate(&ckt, TransientOptions::new(1e-9)).unwrap();
    assert!((sim.value_at(n2, 0.5e-9) - 0.25).abs() < 1e-3);
}

/// A current source pumping a capacitor-only island has no DC solution
/// and is rejected at assembly.
#[test]
fn driven_floating_island_rejected() {
    let mut ckt = Circuit::new();
    let n1 = ckt.node("n1");
    ckt.add_isource("I1", GROUND, n1, Waveform::dc(1e-6))
        .unwrap();
    ckt.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
    assert!(matches!(
        AweEngine::new(&ckt),
        Err(AweError::Mna(MnaError::NoDcSolution))
    ));
}

/// A source shorted by an ideal wire loop (two V sources in parallel
/// disagreeing) is singular and must error.
#[test]
fn conflicting_sources_rejected() {
    let mut ckt = Circuit::new();
    let n1 = ckt.node("n1");
    ckt.add_vsource("V1", n1, GROUND, Waveform::dc(1.0))
        .unwrap();
    ckt.add_vsource("V2", n1, GROUND, Waveform::dc(2.0))
        .unwrap();
    ckt.add_resistor("R1", n1, GROUND, 1.0).unwrap();
    let engine = AweEngine::new(&ckt).unwrap();
    assert!(engine.approximate(n1, 1).is_err());
}

/// Purely resistive circuits have no transient: order-1 AWE returns the
/// flat DC waveform (zero transient), not an error.
#[test]
fn resistive_circuit_flat_response() {
    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    let n1 = ckt.node("n1");
    ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 2.0))
        .unwrap();
    ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
    ckt.add_resistor("R2", n1, GROUND, 1e3).unwrap();
    let engine = AweEngine::new(&ckt).unwrap();
    let approx = engine.approximate(n1, 1).unwrap();
    assert!((approx.eval(0.0) - 1.0).abs() < 1e-9);
    assert!((approx.final_value() - 1.0).abs() < 1e-9);
    assert!(approx.stable);
}

/// A quiet circuit (DC source, equilibrium ICs) yields a flat waveform.
#[test]
fn quiet_circuit_flat() {
    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    let n1 = ckt.node("n1");
    ckt.add_vsource("V1", n_in, GROUND, Waveform::dc(3.0))
        .unwrap();
    ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
    ckt.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
    let engine = AweEngine::new(&ckt).unwrap();
    let approx = engine.approximate(n1, 2).unwrap();
    for i in 0..5 {
        assert!((approx.eval(i as f64 * 1e-9) - 3.0).abs() < 1e-9);
    }
    assert_eq!(approx.delay_50(), None);
}

/// Extreme element magnitudes (attofarad against kilofarad) survive the
/// frequency-scaled pipeline.
#[test]
fn extreme_value_spread() {
    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    let n1 = ckt.node("n1");
    let n2 = ckt.node("n2");
    ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
        .unwrap();
    ckt.add_resistor("R1", n_in, n1, 1e-3).unwrap();
    ckt.add_capacitor("C1", n1, GROUND, 1e-18).unwrap();
    ckt.add_resistor("R2", n1, n2, 1e9).unwrap();
    ckt.add_capacitor("C2", n2, GROUND, 1e3).unwrap();
    let engine = AweEngine::new(&ckt).unwrap();
    let approx = engine.approximate(n2, 2).unwrap();
    assert!(approx.stable);
    assert!((approx.final_value() - 1.0).abs() < 1e-6);
    // The dominant time constant is a colossal 1e12 seconds; the pole
    // must reflect it rather than underflow.
    let dom = approx.poles()[0].re;
    assert!(dom < 0.0 && dom > -1e-11, "dominant pole {dom}");
}

/// Requesting absurd orders degrades gracefully to the achievable order.
#[test]
fn absurd_order_backs_off() {
    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    let n1 = ckt.node("n1");
    ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
        .unwrap();
    ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
    ckt.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
    let engine = AweEngine::new(&ckt).unwrap();
    let approx = engine.approximate(n1, 7).unwrap();
    assert!(approx.stable);
    let tau = 1e-9;
    for i in 0..10 {
        let t = i as f64 * 0.5e-9;
        let exact = 1.0 - (-t / tau).exp();
        assert!((approx.eval(t) - exact).abs() < 1e-6, "t={t}");
    }
}

/// Zero-duration simulations and degenerate sampling do not divide by
/// zero.
#[test]
fn sim_tiny_windows() {
    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    let n1 = ckt.node("n1");
    ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 1.0))
        .unwrap();
    ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
    ckt.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
    // A window far shorter than the time constant still works.
    let r = simulate(&ckt, TransientOptions::new(1e-15)).unwrap();
    assert!(!r.is_empty());
    assert!(r.value_at(n1, 1e-15) < 0.01);
}

/// Deck-level IC plumbing: explicit ICs round-trip through parse, AWE and
/// the simulator consistently.
#[test]
fn deck_level_initial_conditions() {
    let deck = "
V1 in 0 DC 0
R1 in n1 1k
C1 n1 0 1p IC=2
.end";
    let ckt = parse_deck(deck).unwrap();
    let n1 = ckt.find_node("n1").unwrap();
    let engine = AweEngine::new(&ckt).unwrap();
    let approx = engine.approximate(n1, 1).unwrap();
    assert!((approx.eval(0.0) - 2.0).abs() < 1e-9);
    assert!(approx.final_value().abs() < 1e-9);
    let sim = simulate(&ckt, TransientOptions::new(5e-9)).unwrap();
    for i in 0..10 {
        let t = i as f64 * 0.5e-9;
        assert!((approx.eval(t) - sim.value_at(n1, t)).abs() < 5e-3, "t={t}");
    }
}
