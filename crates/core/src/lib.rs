//! # awe
//!
//! **Asymptotic Waveform Evaluation** — the core contribution of Pillage &
//! Rohrer, *Asymptotic Waveform Evaluation for Timing Analysis* (DAC 1989 /
//! IEEE TCAD 1990), reproduced in Rust.
//!
//! AWE approximates the transient response of a lumped, linear RLC
//! interconnect circuit by matching the initial boundary conditions and
//! the first `2q-1` moments of the exact response to a reduced `q`-pole
//! model. The pipeline:
//!
//! 1. moment generation over the MNA descriptor system (`awe-mna`, §3.2),
//!    or the `O(n)` tree walk for RC trees (`awe-treelink`, §IV);
//! 2. the Hankel moment-matrix solve for the characteristic polynomial
//!    ([`pade`], eq. (24)) with §3.5 frequency scaling;
//! 3. pole extraction (eq. (25)) and residue solves ([`residues`],
//!    eqs. (20)/(29), repeated poles included);
//! 4. waveform assembly with step/ramp superposition
//!    ([`AweApproximation`], §4.3), the §3.4 error estimate
//!    ([`accuracy`]), and the §3.3 stability/order-escalation policy.
//!
//! The classical baselines the paper compares against are provided too:
//! [`elmore`] (Elmore delay / Penfield–Rubinstein single exponential),
//! [`twopole`] (Chu–Horowitz-style two-pole model), and [`bounds`]
//! (provable moment-based response envelopes in the ref. 7/14 tradition).
//!
//! ## Quickstart
//!
//! ```
//! use awe::AweEngine;
//! use awe_circuit::papers::fig4;
//! use awe_circuit::Waveform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = fig4(Waveform::step(0.0, 5.0));
//! let engine = AweEngine::new(&p.circuit)?;
//!
//! // First order: the Elmore model, pole at -1/T_D.
//! let a1 = engine.approximate(p.output, 1)?;
//! // Second order: error estimate collapses (paper Figs. 7 vs 15).
//! let a2 = engine.approximate(p.output, 2)?;
//! assert!(a2.error_estimate.unwrap() < a1.error_estimate.unwrap());
//!
//! let delay = a2.delay_50().expect("rising response");
//! assert!(delay > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod bounds;
pub mod elmore;
mod engine;
mod error;
pub mod macromodel;
pub mod pade;
pub mod rational;
pub mod residues;
mod response;
mod terms;
pub mod twopole;

pub use awe_circuit::{reduce, ReduceOptions, Reduced, ReductionReport};
pub use awe_numeric::{LuSymbolic, SharedSymbolic};
pub use engine::{reduce_decomposition, AweEngine, AweOptions, OrderReport, StageTimings};
pub use error::AweError;
pub use response::{AweApproximation, ResponsePiece};
pub use terms::{ExpSum, ExpTerm};
