//! The structure-group tape compiler and replay VM.
//!
//! After a structure group's donor net finishes its symbolic analysis,
//! the group's remaining members all run the *same* op sequence — stamp
//! values, refactor, moment recursion, Padé/residues, waveform metrics —
//! differing only in numeric values. [`compile`] records that sequence
//! once as a flat [`GroupTape`]; [`replay_block`] then executes the
//! remaining members by replaying the tape over pre-sized, recycled
//! value buffers (a [`WorkerArena`]) instead of re-running the engine's
//! allocation-heavy general path per net.
//!
//! Two tape kinds exist (see `DESIGN.md` §13 for the ISA):
//!
//! * **Sparse** tapes carry the group's [`SharedSymbolic`] analysis and
//!   replay up to [`LANE_WIDTH`] members at once through the lane-strided
//!   [`LaneLu`] kernel — one numeric refactorization and one blocked
//!   moment recursion for the whole lane block.
//! * **Dense** tapes replay one member at a time, recycling the arena's
//!   dense LU buffers and MNA arrays (no lane kernel: dense factors are
//!   pivot-order-divergent, so lanes would immediately desynchronize).
//!
//! Replay is **bit-identical** to the scalar engine path by
//! construction: every stage goes through the same code the scalar path
//! runs (`build_reusing` ≡ `build`, `refill_from_dense` ≡ `from_dense`,
//! per-lane `LaneLu` factors ≡ scalar refactorization,
//! `decompose_lanes_with` ≡ per-lane `decompose_with`,
//! [`reduce_decomposition`] ≡ the engine's delivery policy). Any member
//! that diverges — a failed lane refactorization, an unknown-count
//! mismatch, a dense member that would have taken the sparse path —
//! falls back to the scalar [`solve_net`](crate::engine) for just that
//! member, which is the tape-off code path verbatim.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use awe::{reduce_decomposition, AweError, SharedSymbolic, StageTimings};
use awe_circuit::{Circuit, NodeId};
use awe_mna::{
    decompose_lanes_with, MnaSystem, MomentEngine, MomentWorkspace, StampProgram, SPARSE_THRESHOLD,
};
use awe_numeric::{LaneLu, Lu, Matrix, SparseMatrix, LANE_WIDTH};

use crate::engine::{blank_result, fill_result, solve_net, BatchOptions, NetResult};

/// Tapes compiled this process (one per structure group per option set).
static TAPES_COMPILED: awe_obs::Counter = awe_obs::Counter::new("batch.tapes_compiled");
/// Tape replay invocations (one per scheduled member block).
static TAPE_REPLAYS: awe_obs::Counter = awe_obs::Counter::new("batch.tape_replays");
/// Members that left tape replay for the scalar solve path.
static SCALAR_FALLBACKS: awe_obs::Counter = awe_obs::Counter::new("batch.scalar_fallbacks");
/// Live-lane fraction per executed lane block (1.0 = all lanes full).
static LANE_OCCUPANCY: awe_obs::Histogram = awe_obs::Histogram::new("batch.lane_occupancy");
/// Members restamped through a compiled stamp program (the Stamp op's
/// value-only fast path) instead of a full MNA rebuild.
static STAMP_APPLIES: awe_obs::Counter = awe_obs::Counter::new("batch.stamp_applies");

/// One instruction of a compiled group tape.
///
/// Operands are implicit indices into the replaying [`WorkerArena`]'s
/// value buffers (systems, matrix images, factor lanes, workspace); the
/// member's position in its block selects the lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TapeOp {
    /// Assemble each member's MNA system into the arena's recycled
    /// system buffers (values only; the layout is fixed by the group).
    Stamp,
    /// Numeric multi-lane refactorization of every stamped `G̃` against
    /// the group's shared symbolic pattern.
    RefactorLanes,
    /// Dense LU factorization of `G̃`, recycling the arena's dense
    /// factor buffers.
    FactorDense,
    /// Blocked multi-RHS moment recursion: `count` moments per
    /// excitation piece, all lanes in lockstep.
    Moments {
        /// Moments generated per excitation piece.
        count: usize,
    },
    /// Padé pole matching, pole filtering/rescue, residues, and the
    /// §3.4 error estimate at the requested order (the engine's full
    /// delivery policy).
    Reduce {
        /// Requested approximation order.
        order: usize,
    },
    /// Waveform metrics (50 % delay, final value, poles) into the
    /// member's result row.
    Emit,
}

/// Which factorization kernel a tape replays through.
#[derive(Clone)]
pub enum TapeKind {
    /// Multi-lane sparse replay against a shared symbolic analysis.
    Sparse {
        /// The group's shared symbolic LU pattern.
        symbolic: SharedSymbolic,
    },
    /// Scalar-width dense replay with recycled factor buffers.
    Dense,
}

/// A compiled, flat op schedule for one structure group.
///
/// Compiled once per group (per option set) after the donor solve;
/// cached on the [`BatchEngine`](crate::BatchEngine) keyed by the
/// group's pattern key, so a later single-member run (an ECO re-analysis
/// of one group member) replays without recompiling.
#[derive(Clone)]
pub struct GroupTape {
    /// The group's topology pattern key.
    pub pattern: u64,
    /// Factorization kernel.
    pub kind: TapeKind,
    /// Compiled value-only restamping schedule (sparse tapes whose donor
    /// fits the program contract). The Stamp op uses it to skip the full
    /// MNA rebuild on primed arena slots; `None` replays through
    /// `build_reusing` exactly as before.
    pub program: Option<Arc<StampProgram>>,
    /// The op schedule.
    pub ops: Vec<TapeOp>,
    /// Requested order the `Reduce` op was compiled for.
    pub order: usize,
    /// Moment count the `Moments` op was compiled for.
    pub moment_count: usize,
}

impl fmt::Debug for GroupTape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupTape")
            .field("pattern", &format_args!("{:016x}", self.pattern))
            .field(
                "kind",
                &match self.kind {
                    TapeKind::Sparse { .. } => "sparse",
                    TapeKind::Dense => "dense",
                },
            )
            .field("ops", &self.ops)
            .field("program", &self.program.is_some())
            .finish()
    }
}

impl GroupTape {
    /// Members replayed per lane block: [`LANE_WIDTH`] on the sparse
    /// kernel, one at a time on the dense kernel.
    pub fn lane_width(&self) -> usize {
        match self.kind {
            TapeKind::Sparse { .. } => LANE_WIDTH,
            TapeKind::Dense => 1,
        }
    }

    /// Whether this tape was compiled for the given options (order and
    /// escalation headroom move the op operands, so a stale tape must be
    /// recompiled — compilation needs no donor and is cheap).
    pub fn matches(&self, opts: &BatchOptions) -> bool {
        self.order == opts.order && self.moment_count == moment_count(opts)
    }
}

/// Moments the tape's recursion op must generate: enough for the highest
/// escalated order plus the §3.4 `(q+1)` error reference — the same
/// count the scalar engine requests.
fn moment_count(opts: &BatchOptions) -> usize {
    2 * (opts.order + opts.awe.max_escalation + 1)
}

/// Whether batch tapes apply to this option set at all. Automatic order
/// selection re-plans per net (each member may stop at a different
/// order), so there is no group-uniform schedule to compile.
pub fn tape_applicable(opts: &BatchOptions) -> bool {
    opts.use_tape && opts.auto_target.is_none()
}

/// Compiles the op schedule for one structure group. `symbolic` is the
/// group's shared pattern when the donor took the sparse path; `donor`
/// is the group's donor circuit, from which the Stamp op's value-only
/// restamping program is compiled when the topology fits its contract
/// (see [`StampProgram`]). A donor outside the contract — or a program
/// whose unknown count disagrees with the shared pattern (a pattern-key
/// collision) — simply leaves `program` unset, and Stamp replays through
/// the full build path.
pub fn compile(
    pattern: u64,
    donor: Option<&Circuit>,
    symbolic: Option<SharedSymbolic>,
    opts: &BatchOptions,
) -> GroupTape {
    TAPES_COMPILED.incr();
    let kind = match symbolic {
        Some(symbolic) => TapeKind::Sparse { symbolic },
        None => TapeKind::Dense,
    };
    let program = match (&kind, donor) {
        (TapeKind::Sparse { symbolic }, Some(circuit)) => StampProgram::compile(circuit)
            .filter(|p| p.num_unknowns() == symbolic.dim())
            .map(Arc::new),
        _ => None,
    };
    let factor = match kind {
        TapeKind::Sparse { .. } => TapeOp::RefactorLanes,
        TapeKind::Dense => TapeOp::FactorDense,
    };
    GroupTape {
        pattern,
        ops: vec![
            TapeOp::Stamp,
            factor,
            TapeOp::Moments {
                count: moment_count(opts),
            },
            TapeOp::Reduce { order: opts.order },
            TapeOp::Emit,
        ],
        kind,
        program,
        order: opts.order,
        moment_count: moment_count(opts),
    }
}

/// One worker's owned replay buffers: recycled MNA systems, sparse
/// matrix images, dense factor storage, and the moment-recursion
/// workspace. Each pool worker owns exactly one arena for a whole run,
/// so replay performs no cross-thread sharing and, in steady state, no
/// per-net allocation.
pub struct WorkerArena {
    ws: MomentWorkspace,
    systems: Vec<Option<MnaSystem>>,
    g_imgs: Vec<Option<SparseMatrix>>,
    c_imgs: Vec<Option<SparseMatrix>>,
    /// Pattern key whose stamp program last verified slot `pos`'s
    /// buffers: the system and both images hold that group's donor
    /// structure, so the Stamp op may restamp them in place through the
    /// program instead of rebuilding. Cleared whenever a slot takes on
    /// unverified structure (dense replay, build-path members the
    /// program declines).
    primed: Vec<Option<u64>>,
    dense_lu: Option<Lu>,
}

impl Default for WorkerArena {
    fn default() -> Self {
        WorkerArena {
            ws: MomentWorkspace::new(),
            systems: (0..LANE_WIDTH).map(|_| None).collect(),
            g_imgs: (0..LANE_WIDTH).map(|_| None).collect(),
            c_imgs: (0..LANE_WIDTH).map(|_| None).collect(),
            primed: (0..LANE_WIDTH).map(|_| None).collect(),
            dense_lu: None,
        }
    }
}

impl fmt::Debug for WorkerArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("WorkerArena { .. }")
    }
}

impl WorkerArena {
    /// A fresh arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// One member of a tape replay block.
pub(crate) struct TapeMember<'a> {
    /// Design index (for scattering the result).
    pub index: usize,
    /// Net name.
    pub name: &'a str,
    /// The circuit to solve (the reduced rewrite when the pre-pass ran).
    pub circuit: &'a Circuit,
    /// Observation node in `circuit`.
    pub output: NodeId,
    /// Structural hash (cache key).
    pub hash: u64,
}

/// What replaying one member produced.
pub(crate) struct ReplayOutcome {
    /// Design index.
    pub index: usize,
    /// The member's result (bit-identical to the scalar path).
    pub result: NetResult,
    /// Stage wall times (block-level stages split evenly over members).
    pub stages: StageTimings,
    /// End-to-end wall time of the member's block.
    pub latency: Duration,
    /// Whether the solve reused the group's shared symbolic pattern.
    pub pattern_hit: bool,
    /// A freshly analysed pattern to record (scalar fallbacks of dense
    /// tapes only — mirrors the scalar path's `(None, Some)` case).
    pub new_pattern: Option<SharedSymbolic>,
    /// Whether this member fell back to the scalar solve path.
    pub fallback: bool,
}

/// Deterministic accounting for one replay invocation.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ReplayStats {
    /// Lane blocks executed through the sparse kernel.
    pub lane_blocks: usize,
    /// Live lanes summed over those blocks (occupancy numerator).
    pub lane_lanes: usize,
}

/// Replays `members` of one structure group against `tape`, using (and
/// refilling) the worker's `arena`. Returns one outcome per member, in
/// member order.
pub(crate) fn replay_block(
    tape: &GroupTape,
    members: &[TapeMember<'_>],
    opts: &BatchOptions,
    arena: &mut WorkerArena,
) -> (Vec<ReplayOutcome>, ReplayStats) {
    TAPE_REPLAYS.incr();
    let mut sp = awe_obs::span("tape.replay");
    sp.note(members.len() as f64, tape.lane_width() as f64);
    let mut outcomes = Vec::with_capacity(members.len());
    let mut stats = ReplayStats::default();
    match &tape.kind {
        TapeKind::Sparse { symbolic } => {
            for chunk in members.chunks(LANE_WIDTH) {
                replay_sparse_lanes(
                    tape,
                    symbolic,
                    chunk,
                    opts,
                    arena,
                    &mut outcomes,
                    &mut stats,
                );
            }
        }
        TapeKind::Dense => {
            for member in members {
                outcomes.push(replay_dense_member(tape, member, opts, arena));
            }
        }
    }
    (outcomes, stats)
}

/// A live lane mid-replay: the member position, its stamped system and
/// sparse images, the observed unknown, and the build time. The lane
/// owns its images from Stamp onward (the moment op temporarily takes
/// the `C̃` image into the engine and puts it back); they return to the
/// arena slot when the lane retires.
struct Lane {
    pos: usize,
    sys: MnaSystem,
    g_img: SparseMatrix,
    c_img: Option<SparseMatrix>,
    idx: usize,
    build: Duration,
}

/// Returns a retired lane's buffers to its arena slot. The primed tag,
/// if set, stays valid: retirement never changes the buffers' structure,
/// only their values.
fn park_lane(arena: &mut WorkerArena, lane: Lane) {
    arena.systems[lane.pos] = Some(lane.sys);
    arena.g_imgs[lane.pos] = Some(lane.g_img);
    arena.c_imgs[lane.pos] = lane.c_img;
}

/// Replays up to [`LANE_WIDTH`] members in lockstep through the sparse
/// lane kernel, interpreting the tape's op schedule. Members that
/// diverge at any op drop out to scalar fallback without disturbing
/// their neighbors.
#[allow(clippy::too_many_arguments)]
fn replay_sparse_lanes(
    tape: &GroupTape,
    symbolic: &SharedSymbolic,
    members: &[TapeMember<'_>],
    opts: &BatchOptions,
    arena: &mut WorkerArena,
    outcomes: &mut Vec<ReplayOutcome>,
    stats: &mut ReplayStats,
) {
    let t_block = Instant::now();
    let mut done: Vec<Option<ReplayOutcome>> = members.iter().map(|_| None).collect();
    let mut fallback: Vec<usize> = Vec::new();
    let mut lanes: Vec<Lane> = Vec::new();
    let mut lu: Option<LaneLu> = None;
    let mut refactor_share = Duration::ZERO;
    let mut moments_share = Duration::ZERO;
    let mut decs = Vec::new();

    for op in &tape.ops {
        match *op {
            TapeOp::Stamp => {
                for (pos, member) in members.iter().enumerate() {
                    let t0 = Instant::now();
                    let mut recycled = arena.systems[pos].take();
                    // Fast path: a primed slot (donor-structured system
                    // plus both sparse images, tagged with this tape's
                    // pattern) restamps through the compiled program —
                    // O(elements + nnz) value stores instead of a full
                    // dense rebuild and two dense→CSC refills. A member
                    // the program declines falls through to the build
                    // path below with the buffers back in hand.
                    if let (Some(prog), Some(tag)) = (&tape.program, arena.primed[pos]) {
                        if tag == tape.pattern
                            && recycled.is_some()
                            && arena.g_imgs[pos].is_some()
                            && arena.c_imgs[pos].is_some()
                        {
                            let mut sys = recycled.take().expect("checked above");
                            let mut g_img = arena.g_imgs[pos].take().expect("checked above");
                            let mut c_img = arena.c_imgs[pos].take().expect("checked above");
                            if prog.apply(member.circuit, &mut sys, &mut g_img, &mut c_img) {
                                STAMP_APPLIES.incr();
                                if let Some(idx) = sys.unknown_of_node(member.output) {
                                    lanes.push(Lane {
                                        pos,
                                        sys,
                                        g_img,
                                        c_img: Some(c_img),
                                        idx,
                                        build: t0.elapsed(),
                                    });
                                } else {
                                    let mut result = base_result(member, opts);
                                    result.error =
                                        Some(AweError::BadNode(member.output).to_string());
                                    arena.systems[pos] = Some(sys);
                                    arena.g_imgs[pos] = Some(g_img);
                                    arena.c_imgs[pos] = Some(c_img);
                                    done[pos] = Some(ReplayOutcome {
                                        index: member.index,
                                        result,
                                        stages: StageTimings {
                                            mna: t0.elapsed(),
                                            ..StageTimings::default()
                                        },
                                        latency: t0.elapsed(),
                                        pattern_hit: true,
                                        new_pattern: None,
                                        fallback: false,
                                    });
                                }
                                continue;
                            }
                            recycled = Some(sys);
                            arena.g_imgs[pos] = Some(g_img);
                            arena.c_imgs[pos] = Some(c_img);
                        }
                    }
                    arena.primed[pos] = None;
                    match MnaSystem::build_reusing(member.circuit, recycled) {
                        Ok(sys) => {
                            if sys.num_unknowns() != symbolic.dim() {
                                // Pattern-key collision across unknown
                                // counts: the scalar path would reject the
                                // seed and cold-factor; so does fallback.
                                arena.systems[pos] = Some(sys);
                                fallback.push(pos);
                            } else if let Some(idx) = sys.unknown_of_node(member.output) {
                                // Refill both images now (Stamp-stage
                                // work; the factor and moment ops consume
                                // them in place), and prime the slot for
                                // the next block when the program admits
                                // this member — its structure then
                                // provably equals the donor's.
                                let g_img = refill_or_build(arena.g_imgs[pos].take(), &sys.g_tilde);
                                let c_img = refill_or_build(arena.c_imgs[pos].take(), &sys.c_tilde);
                                if tape
                                    .program
                                    .as_ref()
                                    .is_some_and(|p| p.check(member.circuit))
                                {
                                    arena.primed[pos] = Some(tape.pattern);
                                }
                                lanes.push(Lane {
                                    pos,
                                    sys,
                                    g_img,
                                    c_img: Some(c_img),
                                    idx,
                                    build: t0.elapsed(),
                                });
                            } else {
                                // Scalar parity: the engine seeds the
                                // pattern before the node check, so the
                                // returned pattern equals the seed and
                                // counts as a hit.
                                let mut result = base_result(member, opts);
                                result.error = Some(AweError::BadNode(member.output).to_string());
                                arena.systems[pos] = Some(sys);
                                done[pos] = Some(ReplayOutcome {
                                    index: member.index,
                                    result,
                                    stages: StageTimings {
                                        mna: t0.elapsed(),
                                        ..StageTimings::default()
                                    },
                                    latency: t0.elapsed(),
                                    pattern_hit: true,
                                    new_pattern: None,
                                    fallback: false,
                                });
                            }
                        }
                        Err(e) => {
                            // Scalar parity: `AweEngine::new` fails before
                            // any pattern is involved.
                            let mut result = base_result(member, opts);
                            result.error = Some(AweError::from(e).to_string());
                            done[pos] = Some(ReplayOutcome {
                                index: member.index,
                                result,
                                stages: StageTimings::default(),
                                latency: t0.elapsed(),
                                pattern_hit: false,
                                new_pattern: None,
                                fallback: false,
                            });
                        }
                    }
                }
            }
            TapeOp::RefactorLanes => {
                // Refactor every lane's (already stamped) G̃ image at
                // once. A lane whose values make a stored pivot
                // inadmissible drops to fallback and the survivors
                // refactor again — per-lane factor values are
                // position-independent, so the retry changes nothing for
                // the lanes that already succeeded.
                while !lanes.is_empty() {
                    let t0 = Instant::now();
                    let mats: Vec<&SparseMatrix> = lanes.iter().map(|l| &l.g_img).collect();
                    let (fresh_lu, statuses) = LaneLu::refactor(symbolic, &mats);
                    refactor_share += t0.elapsed();
                    if statuses.iter().all(|s| s.is_ok()) {
                        lu = Some(fresh_lu);
                        break;
                    }
                    let mut survivors = Vec::with_capacity(lanes.len());
                    for (k, lane) in lanes.into_iter().enumerate() {
                        if statuses[k].is_ok() {
                            survivors.push(lane);
                        } else {
                            let pos = lane.pos;
                            park_lane(arena, lane);
                            fallback.push(pos);
                        }
                    }
                    lanes = survivors;
                }
            }
            TapeOp::FactorDense => unreachable!("dense op on a sparse tape"),
            TapeOp::Moments { count } => {
                if lanes.is_empty() {
                    continue;
                }
                let lu = lu.as_ref().expect("refactor precedes moments");
                stats.lane_blocks += 1;
                stats.lane_lanes += lanes.len();
                LANE_OCCUPANCY.record(lanes.len() as f64 / LANE_WIDTH as f64);
                let t0 = Instant::now();
                let c_imgs: Vec<SparseMatrix> = lanes
                    .iter_mut()
                    .map(|l| l.c_img.take().expect("stamp fills the C image"))
                    .collect();
                let mut engines = Vec::with_capacity(lanes.len());
                for (k, (lane, c_img)) in lanes.iter().zip(c_imgs).enumerate() {
                    let factor = lu.extract(k).expect("live lane extracts");
                    engines.push(MomentEngine::from_sparse(&lane.sys, factor, c_img));
                }
                decs = decompose_lanes_with(&engines, lu, &mut arena.ws, count);
                let recycled: Vec<_> = engines.into_iter().map(MomentEngine::into_sparse).collect();
                for (lane, rec) in lanes.iter_mut().zip(recycled) {
                    if let Some((_, c_img)) = rec {
                        lane.c_img = Some(c_img);
                    }
                }
                moments_share += t0.elapsed();
            }
            // Emit runs fused with Reduce (the waveform metrics read the
            // approximation the reduction just delivered).
            TapeOp::Emit => {}
            TapeOp::Reduce { order } => {
                let live = lanes.len().max(1) as u32;
                for (lane, dec) in lanes.drain(..).zip(decs.drain(..)) {
                    match dec {
                        Ok(dec) => {
                            let mut result = base_result(&members[lane.pos], opts);
                            let mut clock = StageTimings {
                                mna: lane.build,
                                refactor: refactor_share / live,
                                moments: moments_share / live,
                                ..StageTimings::default()
                            };
                            match reduce_decomposition(&dec, lane.idx, order, opts.awe, &mut clock)
                            {
                                Ok(approx) => {
                                    result.escalations = approx.order.saturating_sub(order);
                                    fill_result(&mut result, &approx);
                                }
                                Err(e) => result.error = Some(e.to_string()),
                            }
                            arena.ws.recycle(dec);
                            done[lane.pos] = Some(ReplayOutcome {
                                index: members[lane.pos].index,
                                result,
                                stages: clock,
                                latency: t_block.elapsed(),
                                pattern_hit: true,
                                new_pattern: None,
                                fallback: false,
                            });
                        }
                        // A lane the merged recursion could not finish:
                        // replay it scalar, which reproduces the exact
                        // scalar-path error (or result) for that member.
                        Err(_) => fallback.push(lane.pos),
                    }
                    park_lane(arena, lane);
                }
            }
        }
    }

    fallback.sort_unstable();
    for pos in fallback {
        done[pos] = Some(scalar_fallback(
            &members[pos],
            opts,
            Some(symbolic),
            t_block,
        ));
    }
    for (pos, slot) in done.into_iter().enumerate() {
        outcomes.push(
            slot.unwrap_or_else(|| unreachable!("member {pos} neither completed nor fell back")),
        );
    }
}

/// Replays one member of a dense tape: the scalar pipeline with every
/// buffer recycled from the arena (system arrays, dense LU storage,
/// moment workspace).
fn replay_dense_member(
    tape: &GroupTape,
    member: &TapeMember<'_>,
    opts: &BatchOptions,
    arena: &mut WorkerArena,
) -> ReplayOutcome {
    let t0 = Instant::now();
    // Dense replay rebuilds slot 0's system with this member's own
    // structure; any stamp-program priming of that slot is void.
    arena.primed[0] = None;
    let mut result = base_result(member, opts);
    let mut clock = StageTimings::default();
    let mut sys: Option<MnaSystem> = None;
    let mut idx = 0usize;
    let mut lu: Option<Lu> = None;

    for op in &tape.ops {
        match *op {
            TapeOp::Stamp => {
                let t = Instant::now();
                match MnaSystem::build_reusing(member.circuit, arena.systems[0].take()) {
                    Ok(s) => {
                        clock.mna = t.elapsed();
                        if s.num_unknowns() >= SPARSE_THRESHOLD {
                            // The scalar path might choose sparse here;
                            // replaying dense could diverge bitwise.
                            arena.systems[0] = Some(s);
                            return scalar_fallback(member, opts, None, t0);
                        }
                        match s.unknown_of_node(member.output) {
                            Some(i) => {
                                idx = i;
                                sys = Some(s);
                            }
                            None => {
                                result.error = Some(AweError::BadNode(member.output).to_string());
                                arena.systems[0] = Some(s);
                                return emit_dense(member, result, clock, t0);
                            }
                        }
                    }
                    Err(e) => {
                        result.error = Some(AweError::from(e).to_string());
                        return emit_dense(member, result, clock, t0);
                    }
                }
            }
            TapeOp::FactorDense => {
                let s = sys.as_ref().expect("stamp precedes factor");
                let t = Instant::now();
                let mut sp = awe_obs::span("lu.dense_factor");
                sp.note(s.num_unknowns() as f64, 0.0);
                match Lu::factor_reusing(&s.g_tilde, arena.dense_lu.take()) {
                    Ok(f) => {
                        clock.factor = t.elapsed();
                        lu = Some(f);
                    }
                    Err(_) => {
                        // Singular G̃: hand the member to the scalar path
                        // so the error text (and any recovery) matches
                        // tape-off exactly.
                        arena.systems[0] = sys.take();
                        return scalar_fallback(member, opts, None, t0);
                    }
                }
            }
            TapeOp::RefactorLanes => unreachable!("lane op on a dense tape"),
            TapeOp::Moments { count } => {
                let s = sys.as_ref().expect("stamp precedes moments");
                let engine = MomentEngine::from_dense(s, lu.take().expect("factor precedes"));
                let t = Instant::now();
                match engine.decompose_with(&mut arena.ws, count) {
                    Ok(dec) => {
                        clock.moments = t.elapsed();
                        let order = tape.order;
                        match reduce_decomposition(&dec, idx, order, opts.awe, &mut clock) {
                            Ok(approx) => {
                                result.escalations = approx.order.saturating_sub(order);
                                fill_result(&mut result, &approx);
                            }
                            Err(e) => result.error = Some(e.to_string()),
                        }
                        arena.ws.recycle(dec);
                    }
                    Err(e) => result.error = Some(AweError::from(e).to_string()),
                }
                arena.dense_lu = engine.into_dense_lu();
            }
            // Reduce runs fused with the moment op (the decomposition
            // borrows the system); Emit is the return below.
            TapeOp::Reduce { .. } | TapeOp::Emit => {}
        }
    }
    arena.systems[0] = sys;
    emit_dense(member, result, clock, t0)
}

fn emit_dense(
    member: &TapeMember<'_>,
    result: NetResult,
    stages: StageTimings,
    t0: Instant,
) -> ReplayOutcome {
    ReplayOutcome {
        index: member.index,
        result,
        stages,
        latency: t0.elapsed(),
        pattern_hit: false,
        new_pattern: None,
        fallback: false,
    }
}

/// The tape-off path for one member: a full scalar [`solve_net`], seeded
/// with the group pattern when the tape carried one. Bit-identical to
/// running the member with tapes disabled.
fn scalar_fallback(
    member: &TapeMember<'_>,
    opts: &BatchOptions,
    seed: Option<&SharedSymbolic>,
    t0: Instant,
) -> ReplayOutcome {
    SCALAR_FALLBACKS.incr();
    let (result, stages, pattern) = solve_net(
        member.name,
        member.circuit,
        member.output,
        member.hash,
        opts,
        seed,
    );
    let pattern_hit = matches!((seed, &pattern), (Some(s), Some(p)) if Arc::ptr_eq(s, p));
    let new_pattern = match (seed, pattern) {
        (None, Some(p)) => Some(p),
        _ => None,
    };
    ReplayOutcome {
        index: member.index,
        result,
        stages,
        latency: t0.elapsed(),
        pattern_hit,
        new_pattern,
        fallback: true,
    }
}

/// The scalar path's pre-solve result skeleton for one tape member.
fn base_result(member: &TapeMember<'_>, opts: &BatchOptions) -> NetResult {
    blank_result(member.name, member.hash, member.circuit, opts.order)
}

/// Recycles a sparse image in place when its pattern still matches the
/// dense source (bitwise identical to a fresh conversion — proven by the
/// numeric crate's tests), else converts fresh.
fn refill_or_build(recycled: Option<SparseMatrix>, dense: &Matrix) -> SparseMatrix {
    if let Some(mut img) = recycled {
        if img.refill_from_dense(dense) {
            return img;
        }
    }
    SparseMatrix::from_dense(dense)
}
