//! Ablation — §3.5 frequency scaling on vs off, cost and robustness of
//! the moment-matching step on stiff moment sequences.
//!
//! Scaling adds a handful of multiplications per moment; the bench shows
//! the cost is negligible while the conditioning benefit (demonstrated in
//! `report_ablation_scaling`) is orders of magnitude.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use awe::pade::{match_poles, PadeOptions};

/// Moments of a stiff three-pole response at GHz magnitudes.
fn stiff_moments(count: usize) -> Vec<f64> {
    let ks = [5.0, -1.0, 0.3];
    let ps = [-1.8e9f64, -3.1e11, -2.2e13];
    (0..count)
        .map(|r| {
            ks.iter()
                .zip(&ps)
                .map(|(k, p)| k * p.powi(-(r as i32)))
                .sum()
        })
        .collect()
}

fn bench_freq_scaling(c: &mut Criterion) {
    let m = stiff_moments(6);
    let mut group = c.benchmark_group("ablation_freq_scaling");

    group.bench_function("scaled_q3", |b| {
        b.iter(|| {
            let r = match_poles(black_box(&m), 3, PadeOptions::default());
            black_box(r)
        })
    });

    group.bench_function("unscaled_q3", |b| {
        b.iter(|| {
            let r = match_poles(
                black_box(&m),
                3,
                PadeOptions {
                    frequency_scaling: false,
                    ..PadeOptions::default()
                },
            );
            black_box(r)
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_freq_scaling
}
criterion_main!(benches);
