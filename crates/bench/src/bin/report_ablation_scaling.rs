//! Prints the regenerated report for the paper experiment `ablation_scaling`.
//! See DESIGN.md §2 for the experiment index.

fn main() {
    println!("{}", awe_bench::experiments::ablation_scaling());
}
