//! Property-based tests for the numeric substrate.

use proptest::prelude::*;

use awe_numeric::{
    eigenvalues, lu_solve, roots, solve_char_poly, solve_vandermonde, Complex, Lu, Matrix,
    Polynomial,
};

/// Strategy: a well-conditioned (diagonally dominant) n×n matrix.
fn dd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data);
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_residual_small(
        n in 1usize..8,
        seed in proptest::collection::vec(-10.0f64..10.0, 8),
    ) {
        let m = n;
        let a = {
            let mut a = Matrix::zeros(m, m);
            for i in 0..m {
                for j in 0..m {
                    a[(i, j)] = ((i * 31 + j * 17) % 13) as f64 / 13.0
                        + seed[(i + j) % seed.len()] / 20.0;
                }
                a[(i, i)] += m as f64 + 2.0;
            }
            a
        };
        let b: Vec<f64> = (0..m).map(|i| seed[i % seed.len()]).collect();
        let x = lu_solve(&a, &b).expect("diagonally dominant");
        let ax = a.mul_vec(&x);
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-9, "residual {p} vs {q}");
        }
    }

    #[test]
    fn lu_det_matches_transpose(a in dd_matrix(5)) {
        let d1 = Lu::factor(&a).expect("dd").det();
        let d2 = Lu::factor(&a.transpose()).expect("dd").det();
        prop_assert!((d1 - d2).abs() <= 1e-9 * d1.abs().max(1.0));
    }

    #[test]
    fn eigenvalue_sum_is_trace(a in dd_matrix(6)) {
        let eig = eigenvalues(&a).expect("converges");
        let sum: f64 = eig.iter().map(|z| z.re).sum();
        let imag: f64 = eig.iter().map(|z| z.im).sum();
        let tr = a.trace().expect("square");
        prop_assert!((sum - tr).abs() < 1e-6 * tr.abs().max(1.0), "{sum} vs {tr}");
        prop_assert!(imag.abs() < 1e-6, "conjugate pairs must cancel: {imag}");
    }

    #[test]
    fn eigenvalue_product_is_det(a in dd_matrix(5)) {
        let eig = eigenvalues(&a).expect("converges");
        let prod = eig.iter().fold(Complex::ONE, |acc, &z| acc * z);
        let det = Lu::factor(&a).expect("dd").det();
        prop_assert!(
            (prod.re - det).abs() < 1e-6 * det.abs().max(1.0),
            "{} vs {det}",
            prod.re
        );
    }

    #[test]
    fn roots_of_constructed_polynomial(
        rs in proptest::collection::vec(-50.0f64..-0.1, 1..6),
    ) {
        // Separate the roots to keep the problem well-posed.
        let mut roots_in: Vec<f64> = rs;
        roots_in.sort_by(|a, b| a.total_cmp(b));
        roots_in.dedup_by(|a, b| (*a - *b).abs() < 0.3);
        let p = Polynomial::from_roots(&roots_in);
        let found = roots(&p).expect("solvable");
        prop_assert_eq!(found.len(), roots_in.len());
        for &r in &roots_in {
            prop_assert!(
                found.iter().any(|z| (z.re - r).abs() < 1e-4 * r.abs().max(1.0)
                    && z.im.abs() < 1e-4 * r.abs().max(1.0)),
                "missing root {} in {:?}", r, found
            );
        }
    }

    #[test]
    fn polynomial_product_evaluates(
        a in proptest::collection::vec(-3.0f64..3.0, 1..5),
        b in proptest::collection::vec(-3.0f64..3.0, 1..5),
        x in -2.0f64..2.0,
    ) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let prod = &pa * &pb;
        let direct = pa.eval(x) * pb.eval(x);
        prop_assert!((prod.eval(x) - direct).abs() < 1e-9 * direct.abs().max(1.0));
    }

    #[test]
    fn vandermonde_solution_satisfies_system(
        nodes_re in proptest::collection::vec(-5.0f64..5.0, 2..6),
        rhs_re in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        // Separate nodes.
        let mut ns: Vec<f64> = nodes_re;
        ns.sort_by(|a, b| a.total_cmp(b));
        ns.dedup_by(|a, b| (*a - *b).abs() < 0.2);
        prop_assume!(ns.len() >= 2);
        let nodes: Vec<Complex> = ns.iter().map(|&r| Complex::real(r)).collect();
        let rhs: Vec<Complex> = rhs_re[..nodes.len()]
            .iter()
            .map(|&r| Complex::real(r))
            .collect();
        let x = solve_vandermonde(&nodes, &rhs).expect("distinct nodes");
        for (j, want) in rhs.iter().enumerate() {
            let got: Complex = nodes
                .iter()
                .zip(&x)
                .map(|(n, xi)| n.powi(j as i32) * *xi)
                .sum();
            prop_assert!((got - *want).abs() < 1e-6 * want.abs().max(1.0));
        }
    }

    #[test]
    fn prony_recovers_exponential_sums(
        poles in proptest::collection::vec(-100.0f64..-0.5, 1..4),
        weights in proptest::collection::vec(0.2f64..3.0, 4),
    ) {
        // Well-separated stable poles with nonzero weights.
        let mut ps: Vec<f64> = poles;
        ps.sort_by(|a, b| a.total_cmp(b));
        ps.dedup_by(|a, b| (*a / *b) > 0.5); // keep ratios ≥ 2
        let q = ps.len();
        let ks = &weights[..q];
        let moments: Vec<f64> = (0..2 * q)
            .map(|r| {
                ks.iter()
                    .zip(&ps)
                    .map(|(k, p)| k * p.powi(-(r as i32)))
                    .sum()
            })
            .collect();
        let cp = solve_char_poly(&moments, q).expect("full rank");
        let rec = roots(&cp.poly).expect("roots");
        for &p in &ps {
            let target = 1.0 / p;
            prop_assert!(
                rec.iter().any(|z| (z.re - target).abs() < 1e-5 * target.abs()
                    && z.im.abs() < 1e-5 * target.abs()),
                "missing reciprocal pole {} in {:?}", target, rec
            );
        }
    }

    #[test]
    fn complex_field_identities(
        ar in -10.0f64..10.0, ai in -10.0f64..10.0,
        br in -10.0f64..10.0, bi in -10.0f64..10.0,
        cr in -10.0f64..10.0, ci in -10.0f64..10.0,
    ) {
        let (a, b, c) = (
            Complex::new(ar, ai),
            Complex::new(br, bi),
            Complex::new(cr, ci),
        );
        // Distributivity within rounding.
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        prop_assert!((lhs - rhs).abs() <= 1e-12 * lhs.abs().max(1.0));
        // Conjugation is multiplicative.
        let cm = (a * b).conj();
        let mc = a.conj() * b.conj();
        prop_assert!((cm - mc).abs() <= 1e-12 * cm.abs().max(1.0));
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs()
            <= 1e-10 * (a.abs() * b.abs()).max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sparse and dense LU agree on random sparse systems, including ones
    /// that require pivoting (zero structural diagonals).
    #[test]
    fn sparse_lu_matches_dense(
        n in 2usize..30,
        seed in 0u64..10_000,
        zero_diag in proptest::bool::ANY,
    ) {
        use awe_numeric::{SparseLu, SparseMatrix};
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = 3.0 + next().abs();
            if i + 1 < n {
                d[(i, i + 1)] = next();
                d[(i + 1, i)] = next();
            }
            let far = (i * 5 + 2) % n;
            if far != i {
                d[(i, far)] += 0.3 * next();
            }
        }
        if zero_diag && n >= 3 {
            // Force a permutation-requiring structure: swap two rows so
            // a structural diagonal becomes zero but the matrix stays
            // nonsingular.
            d.swap_rows(0, n - 1);
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let dense = lu_solve(&d, &b).expect("dense solvable");
        let s = SparseMatrix::from_dense(&d);
        let sparse = SparseLu::factor(&s, None).expect("sparse factors")
            .solve(&b).expect("sparse solves");
        for (a, q) in dense.iter().zip(&sparse) {
            prop_assert!((a - q).abs() < 1e-8, "{a} vs {q}");
        }
        // Residual check against the original matrix too.
        let r = s.mul_vec(&sparse);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8);
        }
    }

    /// RCM produces a valid permutation and never breaks the solve.
    #[test]
    fn rcm_permutation_is_valid(n in 2usize..40, seed in 0u64..5_000) {
        use awe_numeric::SparseMatrix;
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 4.0));
            let j = ((i as u64).wrapping_mul(seed + 3) % n as u64) as usize;
            if j != i {
                triplets.push((i, j, -1.0));
                triplets.push((j, i, -1.0));
            }
        }
        let s = SparseMatrix::from_triplets(n, n, &triplets);
        let perm = s.rcm_ordering().expect("square");
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        // Symmetric permutation round-trips the matrix data.
        let p = s.permute_symmetric(&perm);
        prop_assert_eq!(p.nnz(), s.nnz());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse LU *with the RCM elimination order* matches dense LU on
    /// random SPD systems — the exact pairing the verify subsystem's
    /// sparse-lu oracle runs on MNA matrices, here on synthetic
    /// diagonally-dominant graph Laplacians where SPD-ness is by
    /// construction.
    #[test]
    fn sparse_lu_rcm_matches_dense_on_spd(n in 2usize..25, seed in 0u64..5_000) {
        use awe_numeric::{SparseLu, SparseMatrix};
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 // in [0, 1)
        };
        // Weighted ring + random chords; diagonal = incident weight sum
        // plus a positive shift => symmetric strictly diagonally dominant
        // with positive diagonal, hence SPD.
        let mut off = vec![vec![0.0f64; n]; n];
        #[allow(clippy::needless_range_loop)] // symmetric writes to rows i and j
        for i in 0..n {
            let j = (i + 1) % n;
            if i != j {
                let w = 0.1 + next();
                off[i][j] += w;
                off[j][i] += w;
            }
            let far = ((i as u64).wrapping_mul(seed | 1) % n as u64) as usize;
            if far != i {
                let w = 0.1 + next();
                off[i][far] += w;
                off[far][i] += w;
            }
        }
        let mut triplets = Vec::new();
        for (i, row) in off.iter().enumerate() {
            let mut diag = 0.5 + next();
            for (j, &w) in row.iter().enumerate() {
                if w != 0.0 {
                    triplets.push((i, j, -w));
                    diag += w;
                }
            }
            triplets.push((i, i, diag));
        }
        let s = SparseMatrix::from_triplets(n, n, &triplets);
        let new_of_old = s.rcm_ordering().expect("square matrix");
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&old| new_of_old[old]);

        let b: Vec<f64> = (0..n).map(|_| next() - 0.5).collect();
        let dense = lu_solve(&s.to_dense(), &b).expect("SPD is nonsingular");
        let sparse = SparseLu::factor(&s, Some(&order))
            .expect("SPD factors under any symmetric order")
            .solve(&b)
            .expect("solves");
        for (a, q) in dense.iter().zip(&sparse) {
            prop_assert!((a - q).abs() < 1e-8, "{a} vs {q}");
        }
        let r = s.mul_vec(&sparse);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8, "residual {ri} vs {bi}");
        }
    }

    /// Exactly singular systems (a duplicated row) are rejected by BOTH
    /// factorizations — neither silently returns garbage, and they agree
    /// on solvability just as the verify oracle demands of MNA matrices.
    #[test]
    fn singular_systems_rejected_by_both(n in 3usize..20, seed in 0u64..2_000) {
        use awe_numeric::{NumericError, SparseLu, SparseMatrix};
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = 2.0 + ((seed.wrapping_add(i as u64) % 7) as f64) * 0.25;
            if i + 1 < n {
                d[(i, i + 1)] = -1.0;
                d[(i + 1, i)] = -1.0;
            }
        }
        // Duplicate one row: exact rank deficiency, exact zero pivot.
        let dup = (seed as usize) % (n - 1);
        for j in 0..n {
            d[(dup + 1, j)] = d[(dup, j)];
        }
        let b = vec![1.0; n];
        let dense = lu_solve(&d, &b);
        prop_assert!(
            matches!(dense, Err(NumericError::Singular { .. })),
            "dense accepted a singular system: {dense:?}"
        );
        let s = SparseMatrix::from_dense(&d);
        let sparse = SparseLu::factor(&s, None).and_then(|f| f.solve(&b));
        prop_assert!(
            matches!(sparse, Err(NumericError::Singular { .. })),
            "sparse accepted a singular system: {sparse:?}"
        );
    }

    /// Near-singular (ill-conditioned) systems are *detectable*: the
    /// factorization may succeed, but the Hager condition estimate and
    /// the minimum pivot both flag the system so callers can reject it
    /// (the verify harness caps trustworthy models at cond 1e14).
    #[test]
    fn ill_conditioned_systems_are_flagged(n in 3usize..20, eps_exp in 12i32..15) {
        let eps = 10f64.powi(-eps_exp);
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = 2.0;
            if i + 1 < n {
                d[(i, i + 1)] = -1.0;
                d[(i + 1, i)] = -1.0;
            }
        }
        // Two nearly identical rows: rank deficiency up to eps.
        for j in 0..n {
            let v = d[(0, j)];
            d[(1, j)] = v * (1.0 + if j == 0 { eps } else { 0.0 });
        }
        let norm_one = (0..n)
            .map(|j| (0..n).map(|i| d[(i, j)].abs()).sum::<f64>())
            .fold(0.0f64, f64::max);
        let f = Lu::factor(&d).expect("near-singular still factors");
        let cond = f.condition_estimate(norm_one);
        prop_assert!(
            cond > 1e10,
            "condition estimate {cond:.3e} misses eps={eps:.0e} rank gap"
        );
        prop_assert!(f.min_pivot() < 1e-9 * norm_one, "min pivot {:.3e}", f.min_pivot());
    }
}
