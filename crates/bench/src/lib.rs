//! # awe-bench
//!
//! Benchmark and reproduction harness for the AWEsim workspace: one
//! experiment module per table/figure of the paper's evaluation, shared by
//! the `report_*` binaries (which print the regenerated rows/series) and
//! the Criterion benches (which measure the paper's cost claims).
//!
//! See DESIGN.md §2 for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured outcomes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod format;
pub mod plot;
