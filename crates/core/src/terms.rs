//! Exponential-sum terms: the time-domain form of the AWE approximation.
//!
//! A `q`-pole AWE model is `x̂(t) = Σ_l k_l·e^{p_l t}` (paper eq. (15)),
//! generalized for repeated poles to terms `k·t^d/d!·e^{p t}` (the inverse
//! transforms of `k/(s-p)^{d+1}`, paper eqs. (26)–(29)). This module
//! provides the term type, real-valued evaluation (conjugate pairs cancel
//! imaginary parts), and the exact `L²` inner products the accuracy
//! estimate of §3.4 integrates.

use awe_numeric::Complex;

/// One term `coeff · t^power / power! · e^{pole·t}` of an exponential sum.
///
/// Complex terms must appear together with their conjugates for the sum to
/// be real; [`ExpSum::eval`] takes the real part of the total, so exact
/// pairing keeps the imaginary residue at rounding level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpTerm {
    /// The pole `p` (must have negative real part for a stable term).
    pub pole: Complex,
    /// The coefficient `k` (residue for simple poles).
    pub coeff: Complex,
    /// The polynomial power `d` (`0` for simple poles; `d ≥ 1` for
    /// repeated poles of multiplicity `d+1`).
    pub power: usize,
}

impl ExpTerm {
    /// A simple-pole term `k·e^{p t}`.
    pub fn simple(pole: Complex, coeff: Complex) -> Self {
        ExpTerm {
            pole,
            coeff,
            power: 0,
        }
    }

    /// Complex value of the term at time `t ≥ 0`.
    pub fn eval_complex(&self, t: f64) -> Complex {
        let mut poly = 1.0;
        for d in 1..=self.power {
            poly *= t / d as f64;
        }
        self.coeff * poly * (self.pole * t).exp()
    }

    /// `true` when the pole lies strictly in the left half plane.
    pub fn is_stable(&self) -> bool {
        self.pole.re < 0.0
    }
}

/// A finite sum of exponential terms — the transient part of an AWE
/// approximation.
///
/// # Examples
///
/// ```
/// use awe::{ExpSum, ExpTerm};
/// use awe_numeric::Complex;
///
/// // 5·(1 - e^{-t}) has transient part -5·e^{-t}.
/// let h = ExpSum::new(vec![ExpTerm::simple(
///     Complex::real(-1.0),
///     Complex::real(-5.0),
/// )]);
/// assert!((h.eval(0.0) + 5.0).abs() < 1e-12);
/// assert!(h.eval(50.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExpSum {
    terms: Vec<ExpTerm>,
}

impl ExpSum {
    /// Creates a sum from terms.
    pub fn new(terms: Vec<ExpTerm>) -> Self {
        ExpSum { terms }
    }

    /// The empty (identically zero) sum.
    pub fn zero() -> Self {
        ExpSum { terms: Vec::new() }
    }

    /// The terms.
    pub fn terms(&self) -> &[ExpTerm] {
        &self.terms
    }

    /// Real value at time `t ≥ 0` (the imaginary parts of conjugate pairs
    /// cancel; any rounding residue is discarded).
    pub fn eval(&self, t: f64) -> f64 {
        self.terms
            .iter()
            .map(|term| term.eval_complex(t))
            .fold(Complex::ZERO, |a, b| a + b)
            .re
    }

    /// Value at `t = 0` (`Σ` of coefficients with `power == 0`).
    pub fn initial_value(&self) -> f64 {
        self.terms
            .iter()
            .filter(|t| t.power == 0)
            .map(|t| t.coeff)
            .fold(Complex::ZERO, |a, b| a + b)
            .re
    }

    /// Time derivative at `t = 0`.
    pub fn initial_slope(&self) -> f64 {
        // d/dt [k t^d/d! e^{pt}] at 0 = k·p for d = 0, k for d = 1, 0 else.
        self.terms
            .iter()
            .map(|t| match t.power {
                0 => t.coeff * t.pole,
                1 => t.coeff,
                _ => Complex::ZERO,
            })
            .fold(Complex::ZERO, |a, b| a + b)
            .re
    }

    /// `true` when every pole is strictly stable.
    pub fn is_stable(&self) -> bool {
        self.terms.iter().all(ExpTerm::is_stable)
    }

    /// The slowest (dominant) pole — the one with the largest (least
    /// negative) real part. `None` for the empty sum.
    pub fn dominant_pole(&self) -> Option<Complex> {
        self.terms
            .iter()
            .map(|t| t.pole)
            .max_by(|a, b| a.re.partial_cmp(&b.re).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// A conservative settling horizon: several time constants of the
    /// dominant pole. Returns `None` for empty or unstable sums.
    pub fn settle_time(&self, factor: f64) -> Option<f64> {
        if self.terms.is_empty() || !self.is_stable() {
            return None;
        }
        let dom = self.dominant_pole()?;
        Some(factor / (-dom.re))
    }

    /// Exact `∫₀^∞ f(t)·g(t) dt` for two exponential sums whose poles all
    /// lie in the left half plane — the building block of the paper's
    /// §3.4 accuracy measure. Uses
    /// `∫ t^m e^{at}·t^n e^{bt} dt = (m+n)!/(m! n!) · … ` with the terms'
    /// `1/d!` normalization folded in:
    /// `∫ (t^m/m!)e^{at}·(t^n/n!)e^{bt} dt = C(m+n, m)·(-(a+b))^{-(m+n+1)}`.
    ///
    /// Returns `None` if any pole pair sums to a non-negative real part
    /// (divergent integral).
    pub fn inner_product(&self, other: &ExpSum) -> Option<f64> {
        let mut acc = Complex::ZERO;
        for a in &self.terms {
            for b in &other.terms {
                let s = a.pole + b.pole;
                if s.re >= 0.0 {
                    return None;
                }
                let mn = a.power + b.power;
                let binom = binomial(mn, a.power);
                // ∫ t^{mn} e^{st} dt = mn!/(-s)^{mn+1}; normalization gives
                // C(mn, m)·(-s)^{-(mn+1)}.
                acc += a.coeff * b.coeff * binom * (-s).powi(-(mn as i32) - 1);
            }
        }
        Some(acc.re)
    }

    /// Exact `∫₀^∞ f(t)² dt` (squared `L²` norm of the transient).
    ///
    /// Returns `None` for unstable sums.
    pub fn norm_sqr(&self) -> Option<f64> {
        self.inner_product(self)
    }

    /// The difference `self - other` as a new sum (term lists
    /// concatenated with negated coefficients — no cancellation is
    /// attempted).
    pub fn sub(&self, other: &ExpSum) -> ExpSum {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().map(|t| ExpTerm {
            pole: t.pole,
            coeff: -t.coeff,
            power: t.power,
        }));
        ExpSum { terms }
    }
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn single_exponential() {
        let s = ExpSum::new(vec![ExpTerm::simple(c(-2.0, 0.0), c(3.0, 0.0))]);
        assert!((s.eval(0.0) - 3.0).abs() < 1e-15);
        assert!((s.eval(1.0) - 3.0 * (-2.0f64).exp()).abs() < 1e-15);
        assert_eq!(s.initial_value(), 3.0);
        assert_eq!(s.initial_slope(), -6.0);
        assert!(s.is_stable());
        assert_eq!(s.dominant_pole(), Some(c(-2.0, 0.0)));
    }

    #[test]
    fn conjugate_pair_is_real() {
        // k e^{pt} + k* e^{p*t} = 2|k| e^{σt} cos(ωt + φ).
        let p = c(-1.0, 3.0);
        let k = c(0.5, -0.25);
        let s = ExpSum::new(vec![
            ExpTerm::simple(p, k),
            ExpTerm::simple(p.conj(), k.conj()),
        ]);
        for &t in &[0.0, 0.1, 0.5, 2.0] {
            let direct = 2.0 * (k * (p * t).exp()).re;
            assert!((s.eval(t) - direct).abs() < 1e-14);
        }
        assert!((s.initial_value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn repeated_pole_term() {
        // t·e^{-t}: power 1, coeff 1.
        let s = ExpSum::new(vec![ExpTerm {
            pole: c(-1.0, 0.0),
            coeff: c(1.0, 0.0),
            power: 1,
        }]);
        assert_eq!(s.eval(0.0), 0.0);
        assert!((s.eval(2.0) - 2.0 * (-2.0f64).exp()).abs() < 1e-15);
        assert_eq!(s.initial_value(), 0.0);
        assert_eq!(s.initial_slope(), 1.0);
        // t²/2·e^{-t}: power 2.
        let s2 = ExpSum::new(vec![ExpTerm {
            pole: c(-1.0, 0.0),
            coeff: c(1.0, 0.0),
            power: 2,
        }]);
        assert!((s2.eval(3.0) - 4.5 * (-3.0f64).exp()).abs() < 1e-15);
        assert_eq!(s2.initial_slope(), 0.0);
    }

    #[test]
    fn norm_of_single_exponential() {
        // ∫ (k e^{pt})² = k²/(-2p).
        let s = ExpSum::new(vec![ExpTerm::simple(c(-2.0, 0.0), c(3.0, 0.0))]);
        assert!((s.norm_sqr().unwrap() - 9.0 / 4.0).abs() < 1e-14);
    }

    #[test]
    fn norm_of_t_exponential() {
        // ∫ (t e^{-t})² dt = 2!/(2³) = 1/4.
        let s = ExpSum::new(vec![ExpTerm {
            pole: c(-1.0, 0.0),
            coeff: c(1.0, 0.0),
            power: 1,
        }]);
        assert!((s.norm_sqr().unwrap() - 0.25).abs() < 1e-14);
    }

    #[test]
    fn inner_product_matches_pairwise_closed_form() {
        // The correct closed form of the paper's eq. (45) integral
        // E = ∫(k e^{pt} - k̂ e^{p̂t})² dt is
        //   -k²/(2p) - k̂²/(2p̂) + 2 k k̂/(p + p̂)
        // (the printed eq. (45) drops the factors of two on the self
        // terms — one of several typographical slips in the paper; the
        // elementary integral ∫e^{2pt} = -1/(2p) pins the truth).
        let (k, p) = (2.0, -1.0);
        let (kh, ph) = (1.5, -3.0);
        let f = ExpSum::new(vec![ExpTerm::simple(c(p, 0.0), c(k, 0.0))]);
        let g = ExpSum::new(vec![ExpTerm::simple(c(ph, 0.0), c(kh, 0.0))]);
        let e = f.sub(&g).norm_sqr().unwrap();
        let expected = -k * k / (2.0 * p) - kh * kh / (2.0 * ph) + 2.0 * k * kh / (p + ph);
        assert!((e - expected).abs() < 1e-13, "{e} vs {expected}");
    }

    #[test]
    fn norm_numerically_verified() {
        // Compare the closed form against trapezoidal integration for a
        // damped oscillation.
        let p = c(-0.8, 2.5);
        let k = c(1.0, 0.7);
        let s = ExpSum::new(vec![
            ExpTerm::simple(p, k),
            ExpTerm::simple(p.conj(), k.conj()),
        ]);
        let exact = s.norm_sqr().unwrap();
        let (mut acc, n, t_max) = (0.0, 200_000, 25.0);
        let dt = t_max / n as f64;
        for i in 0..n {
            let t0 = i as f64 * dt;
            let (f0, f1) = (s.eval(t0), s.eval(t0 + dt));
            acc += 0.5 * (f0 * f0 + f1 * f1) * dt;
        }
        assert!(
            (exact - acc).abs() < 1e-4 * acc.abs().max(1e-3),
            "{exact} vs {acc}"
        );
    }

    #[test]
    fn unstable_integral_rejected() {
        let s = ExpSum::new(vec![ExpTerm::simple(c(0.5, 0.0), c(1.0, 0.0))]);
        assert!(!s.is_stable());
        assert_eq!(s.norm_sqr(), None);
        assert_eq!(s.settle_time(5.0), None);
    }

    #[test]
    fn settle_time_uses_dominant_pole() {
        let s = ExpSum::new(vec![
            ExpTerm::simple(c(-1.0, 0.0), c(1.0, 0.0)),
            ExpTerm::simple(c(-100.0, 0.0), c(1.0, 0.0)),
        ]);
        assert!((s.settle_time(7.0).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sum() {
        let s = ExpSum::zero();
        assert_eq!(s.eval(1.0), 0.0);
        assert_eq!(s.dominant_pole(), None);
        assert_eq!(s.norm_sqr(), Some(0.0));
        assert!(s.is_stable());
    }
}
