//! The daemon: request dispatch, session registry, and the stdio/TCP
//! serving loops.
//!
//! One [`ServeState`] holds every session behind a two-level lock — the
//! registry map briefly, then the targeted session for the duration of
//! its request — so concurrent connections working on *different*
//! sessions analyze in parallel. [`handle_line`] is the whole protocol:
//! one request line in, one response line out, never a panic, which is
//! also what makes the daemon drivable in-process by tests and the
//! load-generator bench without a socket.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use awe_batch::{BatchOptions, BatchRun, Design};
use awe_circuit::CircuitError;
use awe_obs::flight::{flight_trace, live_profile, FlightTrigger};

use crate::json::Json;
use crate::protocol::{parse_request, DesignSource, ErrorCode, Request, RunOpts, ServeError};
use crate::session::Session;
use crate::telemetry::{eco_class_index, render_prometheus, verb_index, DaemonGauges, Telemetry};

/// Requests handled (well-formed or not).
static REQUESTS: awe_obs::Counter = awe_obs::Counter::new("serve.requests");
/// Requests answered with an error response.
static ERRORS: awe_obs::Counter = awe_obs::Counter::new("serve.errors");

/// Flight-recorder policy for a daemon.
#[derive(Clone, Debug)]
pub struct FlightOptions {
    /// Whether anomalous requests trigger automatic dumps. The
    /// `dump_trace` verb works regardless.
    pub enabled: bool,
    /// Directory automatic dumps (and default-pathed `dump_trace`
    /// dumps) are written to.
    pub dir: PathBuf,
    /// Additionally dump when a request's latency reaches this many
    /// microseconds.
    pub latency_threshold_us: Option<u64>,
}

impl Default for FlightOptions {
    fn default() -> Self {
        FlightOptions {
            enabled: false,
            dir: std::env::temp_dir(),
            latency_threshold_us: None,
        }
    }
}

/// Daemon-wide configuration.
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// Default batch options for new sessions (per-session `opts`
    /// override them).
    pub defaults: BatchOptions,
    /// Flight-recorder policy (disabled by default, so in-process
    /// embedders — tests, benches — never write files as a side
    /// effect).
    pub flight: FlightOptions,
}

/// Request classes for the latency metrics (and the serve bench).
const CLASSES: [&str; 4] = ["load_design", "eco", "analyze", "other"];

/// Automatic flight dumps are rate-limited to one per this interval.
const FLIGHT_DUMP_MIN_INTERVAL_NS: u64 = 1_000_000_000;

/// Shared daemon state: the session registry plus request metrics.
#[derive(Debug)]
pub struct ServeState {
    defaults: BatchOptions,
    flight: FlightOptions,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Request-id mint: every protocol line gets the next id, malformed
    /// lines included, so every event recorded under this daemon is
    /// attributable.
    next_request: AtomicU64,
    /// Per-class request latencies in microseconds, in arrival order.
    latencies: Mutex<[Vec<u64>; 4]>,
    /// Rolling-window latency telemetry.
    telemetry: Mutex<Telemetry>,
    /// Flight dumps written, and the most recent dump's path.
    flight_dumps: AtomicU64,
    last_flight_path: Mutex<Option<String>>,
    /// Monotonic time (telemetry clock) of the last automatic dump —
    /// the rate limiter.
    last_flight_ns: AtomicU64,
}

impl ServeState {
    /// A daemon with no sessions.
    pub fn new(options: ServeOptions) -> Self {
        ServeState {
            defaults: options.defaults,
            flight: options.flight,
            sessions: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            next_request: AtomicU64::new(1),
            latencies: Mutex::new([Vec::new(), Vec::new(), Vec::new(), Vec::new()]),
            telemetry: Mutex::new(Telemetry::new()),
            flight_dumps: AtomicU64::new(0),
            last_flight_path: Mutex::new(None),
            last_flight_ns: AtomicU64::new(0),
        }
    }

    /// Whether a `shutdown` request has been handled.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().expect("session registry").len()
    }

    fn session(&self, name: &str) -> Result<Arc<Mutex<Session>>, ServeError> {
        self.sessions
            .lock()
            .expect("session registry")
            .get(name)
            .cloned()
            .ok_or_else(|| {
                ServeError::new(
                    ErrorCode::NoSuchSession,
                    format!("no session named `{name}`"),
                )
            })
    }

    fn record_latency(&self, class: &str, micros: u64) {
        let slot = CLASSES.iter().position(|c| *c == class).unwrap_or(3);
        self.latencies.lock().expect("latency metrics")[slot].push(micros);
    }

    /// Point-in-time gauges for the exposition. Session sums use
    /// `try_lock` so a scrape never queues behind a long-running
    /// analysis — a busy session's counters are simply a scrape stale.
    fn gauges(&self) -> DaemonGauges {
        let mut g = DaemonGauges {
            requests_total: self.requests.load(Ordering::Relaxed),
            errors_total: self.errors.load(Ordering::Relaxed),
            anomalies_total: awe_obs::anomaly_count(),
            flight_dumps_total: self.flight_dumps.load(Ordering::Relaxed),
            obs_ring_dropped: awe_obs::live_dropped(),
            ..DaemonGauges::default()
        };
        let (lanes, lane_events) = awe_obs::live_occupancy();
        g.obs_lanes = lanes;
        g.obs_lane_events = lane_events;
        let registry = self.sessions.lock().expect("session registry");
        g.sessions = registry.len();
        for slot in registry.values() {
            if let Ok(s) = slot.try_lock() {
                g.cached_results += s.cached_results() as u64;
                g.cached_patterns += s.cached_patterns() as u64;
                g.solves_total += s.stats.solves;
                g.cache_hits_total += s.stats.cache_hits;
                g.pattern_hits_total += s.stats.pattern_hits;
            }
        }
        g
    }

    /// The Prometheus text-format exposition document served by
    /// `--metrics-addr` (also handy for tests and one-shot scrapes).
    pub fn prometheus_text(&self) -> String {
        let gauges = self.gauges();
        let mut tel = self.telemetry.lock().expect("telemetry");
        render_prometheus(&mut tel, &gauges)
    }
}

/// Handles one request line, returning exactly one response line (no
/// trailing newline). Never panics on any input; a `shutdown` request
/// flips [`ServeState::shutting_down`] after building its response.
///
/// Every line — malformed ones included — is minted a request id,
/// echoed back as the response's `req` field and installed as the obs
/// request scope, so every span and health event recorded while the
/// request runs (on any thread, via the pool's scope forwarding)
/// carries it.
pub fn handle_line(state: &ServeState, line: &str) -> String {
    let t0 = Instant::now();
    REQUESTS.incr();
    state.requests.fetch_add(1, Ordering::Relaxed);
    let rid = state.next_request.fetch_add(1, Ordering::Relaxed);
    let _req = awe_obs::req_scope(rid);
    let anomalies_before = awe_obs::anomaly_count();
    let (id, parsed) = parse_request(line);
    let mut eco_class: Option<usize> = None;
    let (verb, class, session, result) = match parsed {
        Err(e) => ("other", "other", None, Err(e)),
        Ok(req) => {
            let verb = verb_name(&req);
            let class = match &req {
                Request::LoadDesign { .. } => "load_design",
                Request::Eco { .. } => "eco",
                Request::Analyze { .. } => "analyze",
                _ => "other",
            };
            let session = request_session(&req);
            (
                verb,
                class,
                session,
                dispatch(state, req, rid, &mut eco_class),
            )
        }
    };
    let micros = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    state.record_latency(class, micros);
    let ok = result.is_ok();
    {
        let mut tel = state.telemetry.lock().expect("telemetry");
        tel.record_request(verb_index(verb), ok, micros);
        if let Some(ci) = eco_class {
            tel.record_eco_class(ci, micros);
        }
    }
    let response = match result {
        Ok((verb, mut payload)) => {
            let mut pairs = vec![
                ("id".to_owned(), id),
                ("req".to_owned(), Json::from(rid)),
                ("ok".to_owned(), Json::Bool(true)),
                ("verb".to_owned(), Json::str(verb)),
            ];
            if let Json::Obj(fields) = &mut payload {
                pairs.append(fields);
            }
            Json::Obj(pairs)
        }
        Err(e) => {
            ERRORS.incr();
            state.errors.fetch_add(1, Ordering::Relaxed);
            Json::obj(vec![
                ("id", id),
                ("req", Json::from(rid)),
                ("ok", Json::Bool(false)),
                ("error", e.to_json()),
            ])
        }
    };
    let anomaly_delta = awe_obs::anomaly_count().saturating_sub(anomalies_before);
    maybe_flight_dump(
        state,
        rid,
        verb,
        session.as_deref(),
        ok,
        micros,
        anomaly_delta,
    );
    response.to_string()
}

/// The wire verb a parsed request records telemetry under.
fn verb_name(req: &Request) -> &'static str {
    match req {
        Request::LoadDesign { .. } => "load_design",
        Request::Eco { .. } => "eco",
        Request::Analyze { .. } => "analyze",
        Request::Report { .. } => "report",
        Request::Metrics { .. } => "metrics",
        Request::DumpTrace { .. } => "dump_trace",
        Request::Ping => "ping",
        Request::Close { .. } => "close",
        Request::Shutdown => "shutdown",
    }
}

/// The session a request targets, for flight-dump attribution.
fn request_session(req: &Request) -> Option<String> {
    match req {
        Request::LoadDesign { session, .. }
        | Request::Eco { session, .. }
        | Request::Analyze { session }
        | Request::Report { session, .. }
        | Request::Close { session } => Some(session.clone()),
        Request::Metrics { session } | Request::DumpTrace { session, .. } => session.clone(),
        Request::Ping | Request::Shutdown => None,
    }
}

/// Writes an automatic flight-recorder dump when the request that just
/// finished looks anomalous: it recorded a numerical-health anomaly
/// (condition warning, Padé/refactor rejection, oracle disagreement),
/// it answered with an error, or it blew the latency threshold. The
/// dump is the live lanes as a Chrome trace with a `flight_trigger`
/// instant naming the request, rate-limited to one per second so an
/// anomaly storm cannot flood the disk.
fn maybe_flight_dump(
    state: &ServeState,
    rid: u64,
    verb: &str,
    session: Option<&str>,
    ok: bool,
    micros: u64,
    anomaly_delta: u64,
) {
    if !state.flight.enabled || !awe_obs::enabled() {
        return;
    }
    let reason = if anomaly_delta > 0 {
        "anomaly"
    } else if !ok {
        "error_response"
    } else if state
        .flight
        .latency_threshold_us
        .is_some_and(|t| micros >= t)
    {
        "slow_request"
    } else {
        return;
    };
    // Rate limit: claim the dump slot with a CAS so concurrent anomalous
    // requests produce one dump, not one each. `0` means "never dumped"
    // (the clock may legitimately read < 1 s early in the process).
    let now = awe_obs::epoch_ns().max(1);
    let last = state.last_flight_ns.load(Ordering::Relaxed);
    if (last != 0 && now.saturating_sub(last) < FLIGHT_DUMP_MIN_INTERVAL_NS)
        || state
            .last_flight_ns
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
    {
        return;
    }
    let Some(profile) = live_profile() else {
        return;
    };
    let trace = flight_trace(
        &profile,
        &FlightTrigger {
            reason: reason.to_owned(),
            request: rid,
            verb: verb.to_owned(),
            session: session.map(str::to_owned),
            latency_us: micros,
        },
    );
    let path = state
        .flight
        .dir
        .join(format!("flight-req{rid:06}-{reason}.json"));
    if std::fs::write(&path, trace).is_ok() {
        state.flight_dumps.fetch_add(1, Ordering::Relaxed);
        *state.last_flight_path.lock().expect("flight path") = Some(path.display().to_string());
    }
}

type Reply = Result<(&'static str, Json), ServeError>;

fn dispatch(state: &ServeState, req: Request, rid: u64, eco_class: &mut Option<usize>) -> Reply {
    match req {
        Request::LoadDesign {
            session,
            source,
            opts,
        } => load_design(state, session, source, opts),
        Request::Eco { session, ops } => {
            let slot = state.session(&session)?;
            let mut s = slot.lock().expect("session");
            let _lane = lane_for(&session);
            let mut sp = awe_obs::span_labeled("serve.request", "eco");
            sp.note(ops.len() as f64, 0.0);
            let out = s.apply_ops(&ops)?;
            // Dominant change class for the per-class latency windows:
            // topology beats value beats noop.
            let dominant = if out.changes.iter().any(|c| c.class == "topology") {
                "topology"
            } else if out.changes.iter().any(|c| c.class == "value") {
                "value"
            } else {
                "noop"
            };
            *eco_class = eco_class_index(dominant);
            let changes: Vec<Json> = out
                .changes
                .iter()
                .map(|c| {
                    Json::obj(vec![
                        ("net", Json::str(&c.net)),
                        ("class", Json::str(c.class)),
                    ])
                })
                .collect();
            Ok((
                "eco",
                Json::obj(vec![
                    ("session", Json::str(&session)),
                    ("ops", Json::from(ops.len())),
                    ("changes", Json::Arr(changes)),
                    ("invalidated_results", Json::from(out.invalidated_results)),
                    ("invalidated_patterns", Json::from(out.invalidated_patterns)),
                ]),
            ))
        }
        Request::Analyze { session } => {
            let slot = state.session(&session)?;
            let mut s = slot.lock().expect("session");
            let _lane = lane_for(&session);
            let mut sp = awe_obs::span_labeled("serve.request", "analyze");
            let summary = s.analyze();
            sp.note(summary.solves as f64, summary.cache_hits as f64);
            Ok((
                "analyze",
                Json::obj(vec![
                    ("session", Json::str(&session)),
                    ("nets", Json::from(summary.nets)),
                    ("dirty_value", Json::from(summary.dirty_value)),
                    ("dirty_topology", Json::from(summary.dirty_topology)),
                    ("swept", Json::from(summary.swept)),
                    ("solves", Json::from(summary.solves)),
                    ("cache_hits", Json::from(summary.cache_hits)),
                    ("pattern_hits", Json::from(summary.pattern_hits)),
                    ("new_symbolic", Json::from(summary.new_symbolic)),
                    ("failures", Json::from(summary.failures)),
                    ("wall_us", Json::from(summary.wall.as_micros() as u64)),
                ]),
            ))
        }
        Request::Report { session, limit } => {
            let slot = state.session(&session)?;
            let s = slot.lock().expect("session");
            let run = s.last_run().ok_or_else(|| {
                ServeError::new(
                    ErrorCode::BadRequest,
                    format!("session `{session}` has not been analyzed yet"),
                )
            })?;
            Ok(("report", report_json(&session, run, limit)))
        }
        Request::Metrics { session } => match session {
            Some(name) => {
                let slot = state.session(&name)?;
                let s = slot.lock().expect("session");
                Ok(("metrics", session_metrics(&s)))
            }
            None => Ok(("metrics", global_metrics(state))),
        },
        Request::DumpTrace { session, path } => {
            let profile = live_profile().ok_or_else(|| {
                ServeError::new(
                    ErrorCode::BadRequest,
                    "no live obs recording (daemon started without tracing enabled)",
                )
            })?;
            let lanes = profile.lanes.len();
            let events: usize = profile.lanes.iter().map(|l| l.events.len()).sum();
            let dropped = profile.events_dropped();
            let out_path = match path {
                Some(p) => PathBuf::from(p),
                None => state
                    .flight
                    .dir
                    .join(format!("flight-req{rid:06}-on_demand.json")),
            };
            let trace = flight_trace(
                &profile,
                &FlightTrigger {
                    reason: "on_demand".to_owned(),
                    request: rid,
                    verb: "dump_trace".to_owned(),
                    session,
                    latency_us: 0,
                },
            );
            std::fs::write(&out_path, trace).map_err(|e| {
                ServeError::new(
                    ErrorCode::BadRequest,
                    format!("cannot write `{}`: {e}", out_path.display()),
                )
            })?;
            state.flight_dumps.fetch_add(1, Ordering::Relaxed);
            let shown = out_path.display().to_string();
            *state.last_flight_path.lock().expect("flight path") = Some(shown.clone());
            Ok((
                "dump_trace",
                Json::obj(vec![
                    ("path", Json::str(shown)),
                    ("lanes", Json::from(lanes)),
                    ("events", Json::from(events)),
                    ("dropped", Json::from(dropped)),
                ]),
            ))
        }
        Request::Ping => Ok(("ping", Json::obj(vec![]))),
        Request::Close { session } => {
            let existed = state
                .sessions
                .lock()
                .expect("session registry")
                .remove(&session)
                .is_some();
            if !existed {
                return Err(ServeError::new(
                    ErrorCode::NoSuchSession,
                    format!("no session named `{session}`"),
                ));
            }
            Ok(("close", Json::obj(vec![("session", Json::str(&session))])))
        }
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            Ok((
                "shutdown",
                Json::obj(vec![("sessions", Json::from(state.session_count()))]),
            ))
        }
    }
}

fn load_design(state: &ServeState, session: String, source: DesignSource, opts: RunOpts) -> Reply {
    // Reserve the name first so two concurrent loads cannot both build.
    {
        let registry = state.sessions.lock().expect("session registry");
        if registry.contains_key(&session) {
            return Err(ServeError::new(
                ErrorCode::DuplicateSession,
                format!("session `{session}` already exists"),
            ));
        }
    }
    let _lane = lane_for(&session);
    let mut sp = awe_obs::span_labeled("serve.request", "load_design");
    let design = build_design(&session, source)?;
    sp.note(design.len() as f64, 0.0);
    let mut s = Session::new(session.clone(), design, state.defaults, opts);
    let summary = s.analyze();
    let payload = Json::obj(vec![
        ("session", Json::str(&session)),
        ("design", Json::str(&s.design().name)),
        ("nets", Json::from(summary.nets)),
        ("groups", Json::from(s.group_count())),
        ("solves", Json::from(summary.solves)),
        ("pattern_hits", Json::from(summary.pattern_hits)),
        ("new_symbolic", Json::from(summary.new_symbolic)),
        ("failures", Json::from(summary.failures)),
        ("wall_us", Json::from(summary.wall.as_micros() as u64)),
    ]);
    let mut registry = state.sessions.lock().expect("session registry");
    if registry.contains_key(&session) {
        // Lost a race with an identically named concurrent load.
        return Err(ServeError::new(
            ErrorCode::DuplicateSession,
            format!("session `{session}` already exists"),
        ));
    }
    registry.insert(session, Arc::new(Mutex::new(s)));
    Ok(("load_design", payload))
}

fn build_design(session: &str, source: DesignSource) -> Result<Design, ServeError> {
    match source {
        DesignSource::Deck { name, deck } => Design::from_deck(name, &deck).map_err(|e| {
            let mut err = ServeError::new(ErrorCode::DeckError, e.to_string())
                .with_net(deck_error_net(&deck, &e).unwrap_or_else(|| "net1".to_owned()));
            if let CircuitError::Parse { line, .. } = e {
                err = err.with_line(line);
            }
            err
        }),
        DesignSource::Chains { nets, stages, seed } => {
            Ok(Design::synthetic_chains(nets, stages, seed))
        }
        DesignSource::Synthetic { nets, seed } => Ok(Design::synthetic(nets, seed)),
    }
    .and_then(|d| {
        if d.is_empty() {
            Err(ServeError::new(ErrorCode::DeckError, "design has no nets")
                .with_net(format!("{session}/<empty>")))
        } else {
            Ok(d)
        }
    })
}

/// Names the net a deck error belongs to: the last `* NET <name>` header
/// at or before the offending line (the multi-deck convention), or the
/// 1-based positional name when the deck uses no headers.
fn deck_error_net(deck: &str, err: &CircuitError) -> Option<String> {
    let CircuitError::Parse { line, .. } = err else {
        return None;
    };
    let mut current: Option<String> = None;
    let mut position = 0usize;
    for (lineno, raw) in deck.lines().enumerate() {
        if lineno + 1 > *line {
            break;
        }
        let text = raw.split(';').next().unwrap_or("").trim();
        if let Some(rest) = text.strip_prefix('*') {
            let mut words = rest.split_whitespace();
            if words.next().is_some_and(|w| w.eq_ignore_ascii_case("net")) {
                if let Some(name) = words.next() {
                    position += 1;
                    current = Some(name.to_owned());
                }
            }
        } else if text.eq_ignore_ascii_case(".end") {
            current = None;
        } else if !text.is_empty() && !text.starts_with('.') && current.is_none() {
            position += 1;
            current = Some(format!("net{position}"));
        }
    }
    current
}

fn report_json(session: &str, run: &BatchRun, limit: Option<usize>) -> Json {
    let cap = limit.unwrap_or(usize::MAX).min(run.results.len());
    let nets: Vec<Json> = run.results[..cap]
        .iter()
        .map(|r| {
            let mut pairs = vec![
                ("name", Json::str(&r.name)),
                ("hash", Json::str(format!("{:016x}", r.hash))),
                ("order", Json::from(r.order)),
                ("stable", Json::from(r.stable)),
                ("rescued", Json::from(r.rescued)),
                ("cache_hit", Json::from(r.cache_hit)),
                ("delay_50", r.delay_50.map(Json::Num).unwrap_or(Json::Null)),
                ("final_value", Json::Num(r.final_value)),
                (
                    "error_estimate",
                    r.error_estimate.map(Json::Num).unwrap_or(Json::Null),
                ),
            ];
            if let Some(e) = &r.error {
                pairs.push(("error", Json::str(e)));
            }
            Json::obj(pairs)
        })
        .collect();
    Json::obj(vec![
        ("session", Json::str(session)),
        ("design", Json::str(&run.design)),
        ("nets_total", Json::from(run.results.len())),
        ("nets", Json::Arr(nets)),
    ])
}

fn session_metrics(s: &Session) -> Json {
    let st = &s.stats;
    Json::obj(vec![
        ("session", Json::str(&s.name)),
        ("nets", Json::from(s.design().len())),
        ("structure_groups", Json::from(s.group_count())),
        ("cached_results", Json::from(s.cached_results())),
        ("cached_patterns", Json::from(s.cached_patterns())),
        ("ecos", Json::from(st.ecos)),
        ("eco_ops", Json::from(st.eco_ops)),
        ("value_nets", Json::from(st.value_nets)),
        ("topology_nets", Json::from(st.topology_nets)),
        ("noop_nets", Json::from(st.noop_nets)),
        ("analyses", Json::from(st.analyses)),
        ("solves", Json::from(st.solves)),
        ("cache_hits", Json::from(st.cache_hits)),
        ("pattern_hits", Json::from(st.pattern_hits)),
        ("new_symbolic", Json::from(st.new_symbolic())),
        ("invalidated_results", Json::from(st.invalidated_results)),
        ("invalidated_patterns", Json::from(st.invalidated_patterns)),
    ])
}

fn global_metrics(state: &ServeState) -> Json {
    let latencies = state.latencies.lock().expect("latency metrics");
    let classes: Vec<(String, Json)> = CLASSES
        .iter()
        .zip(latencies.iter())
        .map(|(class, samples)| {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            (
                (*class).to_owned(),
                Json::obj(vec![
                    ("count", Json::from(sorted.len())),
                    ("p50_us", percentile(&sorted, 50.0)),
                    ("p99_us", percentile(&sorted, 99.0)),
                ]),
            )
        })
        .collect();
    let (lanes, lane_events) = awe_obs::live_occupancy();
    let last_flight = state
        .last_flight_path
        .lock()
        .expect("flight path")
        .clone()
        .map(Json::str)
        .unwrap_or(Json::Null);
    let (telemetry, uptime_s) = {
        let mut tel = state.telemetry.lock().expect("telemetry");
        let uptime = tel.uptime_s();
        (tel.json(), uptime)
    };
    Json::obj(vec![
        ("sessions", Json::from(state.session_count())),
        (
            "requests",
            Json::from(state.requests.load(Ordering::Relaxed)),
        ),
        ("errors", Json::from(state.errors.load(Ordering::Relaxed))),
        ("uptime_s", Json::Num(uptime_s)),
        ("classes", Json::Obj(classes)),
        ("obs_lanes", Json::from(lanes)),
        ("obs_lane_events", Json::from(lane_events)),
        ("obs_ring_dropped", Json::from(awe_obs::live_dropped())),
        ("anomalies", Json::from(awe_obs::anomaly_count())),
        (
            "flight_dumps",
            Json::from(state.flight_dumps.load(Ordering::Relaxed)),
        ),
        ("last_flight_dump", last_flight),
        ("telemetry", telemetry),
    ])
}

/// Nearest-rank percentile of an already-sorted sample, `null` when
/// empty.
fn percentile(sorted: &[u64], p: f64) -> Json {
    if sorted.is_empty() {
        return Json::Null;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    Json::from(sorted[rank.min(sorted.len() - 1)])
}

fn lane_for(session: &str) -> awe_obs::LaneScope {
    awe_obs::lane_scope(&format!("session:{session}"))
}

/// Serves newline-delimited requests from `input` to `output` until EOF
/// or a `shutdown` request. This is the `--stdio` loop, generic so tests
/// can drive it with in-memory buffers.
pub fn serve_lines<R: BufRead, W: Write>(
    state: &ServeState,
    input: R,
    mut output: W,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(state, &line);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if state.shutting_down() {
            break;
        }
    }
    Ok(())
}

/// Serves TCP connections, one thread per client, until a `shutdown`
/// request arrives on any of them. Returns the error only for the
/// listener itself; per-connection I/O errors just end that connection.
pub fn serve_tcp(state: Arc<ServeState>, listener: TcpListener) -> io::Result<()> {
    let local = listener.local_addr()?;
    let mut workers = Vec::new();
    for stream in listener.incoming() {
        if state.shutting_down() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let state = Arc::clone(&state);
        workers.push(std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let was_shutdown = state.shutting_down();
            let _ = serve_lines(&state, reader, &stream);
            // The connection that handled `shutdown` wakes the blocked
            // accept loop with a throwaway connection.
            if !was_shutdown && state.shutting_down() {
                let _ = TcpStream::connect(local);
            }
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

/// Serves the Prometheus exposition on `listener`: every connection gets
/// one scrape — request headers are read (and ignored) up to a short
/// timeout, then the full document is written with an HTTP/1.0 response
/// and the connection closes. Runs until the daemon shuts down; meant
/// for a dedicated thread next to [`serve_tcp`].
pub fn serve_metrics_endpoint(state: Arc<ServeState>, listener: TcpListener) -> io::Result<()> {
    for stream in listener.incoming() {
        if state.shutting_down() {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            // Drain the request line + headers so the client sees a
            // well-ordered exchange; never block a scrape on a slow or
            // silent client.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            let mut buf = [0u8; 1024];
            let mut seen: Vec<u8> = Vec::new();
            loop {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        seen.extend_from_slice(&buf[..n]);
                        if seen.windows(4).any(|w| w == b"\r\n\r\n")
                            || seen.windows(2).any(|w| w == b"\n\n")
                        {
                            break;
                        }
                    }
                }
            }
            let body = state.prometheus_text();
            let response = format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
                 charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            );
            let _ = stream.write_all(response.as_bytes());
            let _ = stream.flush();
        });
    }
    Ok(())
}
