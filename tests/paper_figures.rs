//! End-to-end reproduction checks for every figure experiment of the
//! paper's evaluation (§IV–§V), AWE versus the reference simulator.
//!
//! Each test is one figure: it builds the paper circuit, runs AWE at the
//! order the paper uses, simulates the "exact" waveform, and asserts the
//! relationships the paper reports — who is accurate at which order, how
//! the error falls, where the delays land.

use awesim::circuit::papers::{fig16, fig22, fig22_victim, fig25, fig4, fig8, fig9, VDD};
use awesim::circuit::Waveform;
use awesim::core::elmore::elmore_approximation;
use awesim::core::AweEngine;
use awesim::sim::{relative_l2_vs_sim, simulate, TransientOptions};

fn step5() -> Waveform {
    Waveform::step(0.0, VDD)
}

/// Fig. 7: first-order AWE vs SPICE for the Fig. 4 RC tree step response.
/// The shape matches but visible error remains (the paper's §4.4 reports
/// 36 %); the 50 % delay is nonetheless captured to a few percent.
#[test]
fn fig07_first_order_step() {
    let p = fig4(step5());
    let engine = AweEngine::new(&p.circuit).unwrap();
    let awe1 = engine.approximate(p.output, 1).unwrap();
    let sim = simulate(&p.circuit, TransientOptions::new(8e-3)).unwrap();

    let err = relative_l2_vs_sim(&sim, p.output, |t| awe1.eval(t)).unwrap();
    assert!(
        (0.01..0.6).contains(&err),
        "1st-order error {err} outside the paper's visible-but-usable regime"
    );
    let d_awe = awe1.delay_50().unwrap();
    let d_sim = sim.delay_50(p.output).unwrap();
    assert!(
        ((d_awe - d_sim) / d_sim).abs() < 0.10,
        "delay {d_awe} vs sim {d_sim}"
    );
}

/// Fig. 15: the second-order approximation is indistinguishable from
/// SPICE at plot resolution (paper: error 36 % → 1.6 %).
#[test]
fn fig15_second_order_step() {
    let p = fig4(step5());
    let engine = AweEngine::new(&p.circuit).unwrap();
    let awe1 = engine.approximate(p.output, 1).unwrap();
    let awe2 = engine.approximate(p.output, 2).unwrap();
    let sim = simulate(&p.circuit, TransientOptions::new(8e-3)).unwrap();

    let e1 = relative_l2_vs_sim(&sim, p.output, |t| awe1.eval(t)).unwrap();
    let e2 = relative_l2_vs_sim(&sim, p.output, |t| awe2.eval(t)).unwrap();
    assert!(
        e2 < e1 / 5.0,
        "order 2 ({e2}) must collapse order-1 error ({e1})"
    );
    assert!(e2 < 0.05, "e2 = {e2}");
    // §3.4's internal estimate should agree with the measured error in
    // order of magnitude.
    let est1 = awe1.error_estimate.unwrap();
    assert!(
        est1 > e2,
        "internal estimate {est1} vs measured order-2 {e2}"
    );
}

/// Fig. 12: grounded resistor (Fig. 9) — steady state scales to 4 V and
/// the first-order AWE tracks the simulated response.
#[test]
fn fig12_grounded_resistor() {
    let p = fig9(step5());
    let engine = AweEngine::new(&p.circuit).unwrap();
    let awe1 = engine.approximate(p.output, 1).unwrap();
    let sim = simulate(&p.circuit, TransientOptions::new(6e-3)).unwrap();

    assert!((awe1.final_value() - 4.0).abs() < 1e-6);
    assert!((sim.value_at(p.output, 6e-3) - 4.0).abs() < 5e-3);
    let err = relative_l2_vs_sim(&sim, p.output, |t| awe1.eval(t)).unwrap();
    assert!(err < 0.6, "err = {err}");
    let d_awe = awe1.delay_50().unwrap();
    let d_sim = sim.delay_50(p.output).unwrap();
    assert!(((d_awe - d_sim) / d_sim).abs() < 0.12, "{d_awe} vs {d_sim}");
}

/// Fig. 14: 1 ms-rise ramp input on the Fig. 4 tree, handled by the
/// two-ramp superposition of §4.3. First-order AWE predicts the delay
/// well; the worst deviation sits near t = 0 exactly as the paper notes.
#[test]
fn fig14_ramp_response() {
    let p = fig4(Waveform::rising_step(0.0, VDD, 1e-3));
    let engine = AweEngine::new(&p.circuit).unwrap();
    let awe1 = engine.approximate(p.output, 1).unwrap();
    let sim = simulate(&p.circuit, TransientOptions::new(8e-3)).unwrap();

    let d_awe = awe1.delay_50().unwrap();
    let d_sim = sim.delay_50(p.output).unwrap();
    assert!(
        ((d_awe - d_sim) / d_sim).abs() < 0.05,
        "ramp delay {d_awe} vs {d_sim}"
    );
    // Ramp responses approximate better than steps (§5.4's remark): the
    // error must be below the step-response error.
    let err_ramp = relative_l2_vs_sim(&sim, p.output, |t| awe1.eval(t)).unwrap();
    let p_step = fig4(step5());
    let engine_step = AweEngine::new(&p_step.circuit).unwrap();
    let awe1_step = engine_step.approximate(p_step.output, 1).unwrap();
    let sim_step = simulate(&p_step.circuit, TransientOptions::new(8e-3)).unwrap();
    let err_step = relative_l2_vs_sim(&sim_step, p_step.output, |t| awe1_step.eval(t)).unwrap();
    assert!(
        err_ramp < err_step,
        "ramp error {err_ramp} should be below step error {err_step}"
    );
}

/// Figs. 17–18: the stiff Fig. 16 tree with a 1 ns input ramp — first
/// order is already close (paper: 4.4 %), second order collapses the
/// error (paper: 0.15 %).
#[test]
fn fig17_18_stiff_tree_orders() {
    let p = fig16(Waveform::rising_step(0.0, VDD, 1e-9), None);
    let engine = AweEngine::new(&p.circuit).unwrap();
    let awe1 = engine.approximate(p.output, 1).unwrap();
    let awe2 = engine.approximate(p.output, 2).unwrap();
    let sim = simulate(&p.circuit, TransientOptions::new(6e-9)).unwrap();

    let e1 = relative_l2_vs_sim(&sim, p.output, |t| awe1.eval(t)).unwrap();
    let e2 = relative_l2_vs_sim(&sim, p.output, |t| awe2.eval(t)).unwrap();
    assert!(e1 < 0.30, "first order on a ramp is already decent: {e1}");
    assert!(e2 < e1, "order 2 ({e2}) must improve on order 1 ({e1})");
    assert!(e2 < 0.05, "e2 = {e2}");
}

/// Figs. 20–21: nonequilibrium initial condition `V_C6(0) = 5 V` makes
/// the response nonmonotone; a first-order model cannot represent it
/// (paper: 150 % error) while second order nails it (0.65 %).
#[test]
fn fig20_21_nonequilibrium_ic() {
    // Part 1 — ideal step + IC: the C6-node response is a pure charge-
    // sharing pulse (starts at 5 V, dips, returns to 5 V). Its initial
    // homogeneous value m₋₁ is exactly zero, so the strict first-order
    // match degenerates to a flat line: 100 % error — the paper's
    // "single exponential cannot be used" case (§5.2/§3.3).
    let strict = awesim::core::AweOptions {
        max_escalation: 0,
        allow_order_bump: false,
        ..Default::default()
    };
    let p_step = fig16(step5(), Some(VDD));
    let n6 = p_step.nodes[5];
    let engine_step = AweEngine::new(&p_step.circuit).unwrap();
    let sim_step = simulate(&p_step.circuit, TransientOptions::new(8e-9)).unwrap();
    let w = sim_step.waveform(n6);
    let v_min = w.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    assert!(v_min < 4.0, "expected a nonmonotone dip, min = {v_min}");
    match engine_step.approximate_with(n6, 1, strict) {
        // Preferred outcome: the exact §3.3 "no solution" report — the
        // pulse's m₋₁ is exactly zero, so no one-pole model can match.
        Err(awesim::core::AweError::MomentMatrixSingular { .. }) => {}
        // Rounding may let a degenerate (flat) model through; it must
        // then miss the response essentially completely.
        Ok(awe1_step) => {
            let e1_step = relative_l2_vs_sim(&sim_step, n6, |t| awe1_step.eval(t)).unwrap();
            assert!(
                e1_step > 0.9,
                "first order on the pure IC pulse should fail at ~100 %: {e1_step}"
            );
        }
        Err(other) => panic!("unexpected error: {other}"),
    }

    // Part 2 — 1 ns ramp + IC (the §5.1/§5.2 input): first order is poor,
    // second order captures the dip, third is better still.
    let p = fig16(Waveform::rising_step(0.0, VDD, 1e-9), Some(VDD));
    let n6 = p.nodes[5];
    let engine = AweEngine::new(&p.circuit).unwrap();
    let sim = simulate(&p.circuit, TransientOptions::new(8e-9)).unwrap();
    let e: Vec<f64> = (1..=3)
        .map(|q| {
            let a = engine.approximate_with(n6, q, strict).unwrap();
            assert!(a.stable, "order {q} should be stable");
            relative_l2_vs_sim(&sim, n6, |t| a.eval(t)).unwrap()
        })
        .collect();
    assert!(
        e[0] > 4.0 * e[1],
        "q1 ({}) should dwarf q2 ({})",
        e[0],
        e[1]
    );
    assert!(e[1] < 0.10, "q2 error {}", e[1]);
    assert!(
        e[2] <= e[1] * 1.05,
        "q3 ({}) should not regress q2 ({})",
        e[2],
        e[1]
    );
    // The order-2 model reproduces the dip itself, not just the L2 score.
    let awe2 = engine.approximate_with(n6, 2, strict).unwrap();
    let dip_awe = (0..800)
        .map(|i| awe2.eval(i as f64 * 1e-11))
        .fold(f64::INFINITY, f64::min);
    let dip_sim = sim
        .waveform(n6)
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    assert!(
        (dip_awe - dip_sim).abs() < 1.0,
        "dip depth: awe {dip_awe} vs sim {dip_sim}"
    );
}

/// Figs. 23–24: floating coupling capacitor (Fig. 22). The coupling
/// slows the output delay and dumps charge onto the victim; the victim
/// waveform's peak is captured and the delay shift is positive.
#[test]
fn fig23_24_floating_cap() {
    let base = fig16(step5(), None);
    let coupled = fig22(step5(), None);
    let eng_base = AweEngine::new(&base.circuit).unwrap();
    let eng_coupled = AweEngine::new(&coupled.circuit).unwrap();

    // Delay at the 4.0 V logic threshold (the paper's §5.3 metric)
    // lengthens when the coupling cap is added (1.6 → 1.7 ns there).
    let a_base = eng_base.approximate(base.output, 3).unwrap();
    let a_coup = eng_coupled.approximate(coupled.output, 3).unwrap();
    let d_base = a_base.delay_to_threshold(4.0).unwrap();
    let d_coup = a_coup.delay_to_threshold(4.0).unwrap();
    assert!(
        d_coup > d_base * 1.01,
        "coupling must slow the output: {d_base} vs {d_coup}"
    );

    // Victim waveform: rises then decays; AWE order 3 tracks the sim.
    let victim = fig22_victim(&coupled);
    let sim = simulate(&coupled.circuit, TransientOptions::new(6e-9)).unwrap();
    let a_victim = eng_coupled.approximate(victim, 3).unwrap();
    let peak_sim = sim
        .waveform(victim)
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    assert!(
        peak_sim > 0.05,
        "coupling should disturb the victim: {peak_sim}"
    );
    let peak_awe = (0..600)
        .map(|i| a_victim.eval(i as f64 * 1e-11))
        .fold(0.0f64, f64::max);
    assert!(
        ((peak_awe - peak_sim) / peak_sim).abs() < 0.25,
        "victim peak {peak_awe} vs sim {peak_sim}"
    );
}

/// Fig. 26: the underdamped RLC circuit. Second order sees the ringing
/// but with sizeable error (paper: 22 %); fourth order matches (< 1 %).
#[test]
fn fig26_rlc_orders() {
    let p = fig25(step5());
    let engine = AweEngine::new(&p.circuit).unwrap();
    let sim = simulate(&p.circuit, TransientOptions::new(2e-8)).unwrap();

    let awe2 = engine
        .approximate_with(
            p.output,
            2,
            awesim::core::AweOptions {
                max_escalation: 0,
                ..Default::default()
            },
        )
        .unwrap();
    let awe4 = engine.approximate(p.output, 4).unwrap();
    let e2 = relative_l2_vs_sim(&sim, p.output, |t| awe2.eval(t)).unwrap();
    let e4 = relative_l2_vs_sim(&sim, p.output, |t| awe4.eval(t)).unwrap();
    assert!(e4 < e2 / 2.0, "order 4 ({e4}) must collapse order 2 ({e2})");
    assert!(e4 < 0.08, "e4 = {e4}");

    // Overshoot: the simulated response rings above the 5 V rail, and
    // second order already detects the overshoot (paper's observation).
    let peak_sim = sim
        .waveform(p.output)
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    assert!(peak_sim > VDD * 1.05, "underdamped peak {peak_sim}");
    let peak_awe2 = (0..2000)
        .map(|i| awe2.eval(i as f64 * 1e-11))
        .fold(0.0f64, f64::max);
    assert!(
        peak_awe2 > VDD * 1.02,
        "order 2 must see overshoot: {peak_awe2}"
    );
}

/// Fig. 27: RLC with a 1 ns input rise — the residues shift so one pair
/// dominates, and the low-order approximation improves versus the ideal
/// step (the paper's closing observation in §5.4).
#[test]
fn fig27_rlc_ramp() {
    let ramp = fig25(Waveform::rising_step(0.0, VDD, 1e-9));
    let engine = AweEngine::new(&ramp.circuit).unwrap();
    let sim = simulate(&ramp.circuit, TransientOptions::new(2e-8)).unwrap();
    let awe2 = engine
        .approximate_with(
            ramp.output,
            2,
            awesim::core::AweOptions {
                max_escalation: 0,
                ..Default::default()
            },
        )
        .unwrap();
    let e2_ramp = relative_l2_vs_sim(&sim, ramp.output, |t| awe2.eval(t)).unwrap();

    let step = fig25(step5());
    let engine_s = AweEngine::new(&step.circuit).unwrap();
    let sim_s = simulate(&step.circuit, TransientOptions::new(2e-8)).unwrap();
    let awe2_s = engine_s
        .approximate_with(
            step.output,
            2,
            awesim::core::AweOptions {
                max_escalation: 0,
                ..Default::default()
            },
        )
        .unwrap();
    let e2_step = relative_l2_vs_sim(&sim_s, step.output, |t| awe2_s.eval(t)).unwrap();
    assert!(
        e2_ramp < e2_step,
        "finite rise time must help order 2: ramp {e2_ramp} vs step {e2_step}"
    );
}

/// Fig. 8's ladder: trivial steady state, and AWE's final value is exact
/// by construction (m₀ matching ⇒ stability, §3.3).
#[test]
fn fig08_lc_ladder_final_value() {
    let p = fig8(step5());
    let engine = AweEngine::new(&p.circuit).unwrap();
    let awe4 = engine.approximate(p.output, 4).unwrap();
    assert!((awe4.final_value() - VDD).abs() < 1e-6);
}

/// §IV sanity: the Elmore baseline and first-order AWE agree on the
/// simulated circuit, and both are near the simulator's measured delay.
#[test]
fn elmore_awe_sim_triangle() {
    let p = fig4(step5());
    let engine = AweEngine::new(&p.circuit).unwrap();
    let awe1 = engine.approximate(p.output, 1).unwrap();
    let pr = elmore_approximation(&p.circuit, p.output).unwrap();
    let sim = simulate(&p.circuit, TransientOptions::new(8e-3)).unwrap();
    let (d_awe, d_pr) = (awe1.delay_50().unwrap(), pr.delay_50().unwrap());
    let d_sim = sim.delay_50(p.output).unwrap();
    assert!(
        ((d_awe - d_pr) / d_pr).abs() < 1e-9,
        "AWE-1 == Elmore model"
    );
    assert!(((d_awe - d_sim) / d_sim).abs() < 0.10);
}

/// Fig. 24 with a *truly floating* victim (§3.1): the coupling capacitor
/// dumps charge onto `C12` and — with no conductive leak — the victim
/// voltage rises to a permanent plateau at exactly the capacitor-divider
/// share. AWE's charge-conservation handling and the simulator agree.
#[test]
fn fig24_floating_victim_plateau() {
    use awesim::circuit::papers::fig22_floating;
    let p = fig22_floating(step5(), None);
    let victim = fig22_victim(&p);
    let engine = AweEngine::new(&p.circuit).unwrap();
    let approx = engine.approximate(victim, 3).unwrap();

    // Plateau value: the aggressor settles at 5 V; the victim divider is
    // C11/(C11+C12) of that = 5·2/7 ≈ 1.4286 V (starting uncharged).
    let plateau = 5.0 * 2.0e-13 / (2.0e-13 + 5.0e-13);
    assert!(
        (approx.final_value() - plateau).abs() < 1e-6,
        "final {} vs plateau {plateau}",
        approx.final_value()
    );

    let sim = simulate(&p.circuit, TransientOptions::new(8e-9)).unwrap();
    assert!(
        (sim.value_at(victim, 8e-9) - plateau).abs() < 2e-3,
        "sim end {}",
        sim.value_at(victim, 8e-9)
    );
    let err = relative_l2_vs_sim(&sim, victim, |t| approx.eval(t)).unwrap();
    assert!(err < 0.10, "victim waveform error {err}");

    // The output (n7) threshold delay still slips versus the uncoupled
    // tree, as in the resistively-held variant.
    let base = fig16(step5(), None);
    let eng_base = AweEngine::new(&base.circuit).unwrap();
    let d_base = eng_base
        .approximate(base.output, 3)
        .unwrap()
        .delay_to_threshold(4.0)
        .unwrap();
    let d_coup = engine
        .approximate(p.output, 3)
        .unwrap()
        .delay_to_threshold(4.0)
        .unwrap();
    assert!(d_coup > d_base, "coupling must slow the output");
}
