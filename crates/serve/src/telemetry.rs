//! Continuous daemon telemetry: per-verb and per-ECO-class rolling
//! latency windows, the extended `metrics` payload, and the
//! Prometheus-style text exposition.
//!
//! One [`Telemetry`] lives inside the daemon state behind a mutex. Every
//! handled line records its latency into two [`WindowedHistogram`]s for
//! its verb (the last minute at 1 s resolution, the last quarter hour at
//! 30 s), and an accepted `eco` additionally records under its dominant
//! change class — so "value edits got slow in the last minute" is
//! answerable while "since boot" totals would bury it. Windows use the
//! daemon's own monotonic clock (nanoseconds since [`Telemetry::new`]),
//! never wall time.
//!
//! Two renderings of the same snapshots:
//!
//! * [`Telemetry::json`] — merged into the session-less `metrics` verb
//!   reply (uptime, per-verb counts/errors and windowed p50/p95/p99);
//! * [`render_prometheus`] — the plain-text exposition served by
//!   `--metrics-addr`, one `name{labels} value` sample per line in the
//!   Prometheus text format (version 0.0.4), gauges and counters plus
//!   quantile-labeled latency samples.

use std::time::Instant;

use awe_obs::windows::{WindowSnapshot, WindowSpec, WindowedHistogram};

use crate::json::Json;

/// Verb labels the telemetry tracks, in wire order. `other` absorbs
/// malformed lines and unknown verbs.
pub const VERBS: [&str; 10] = [
    "load_design",
    "eco",
    "analyze",
    "report",
    "metrics",
    "dump_trace",
    "ping",
    "close",
    "shutdown",
    "other",
];

/// ECO change classes (dominant class of an accepted `eco` request).
pub const ECO_CLASSES: [&str; 3] = ["value", "topology", "noop"];

/// The two windows every latency series keeps.
const WINDOWS: [(&str, WindowSpec); 2] = [
    ("60s", WindowSpec::MINUTE),
    ("900s", WindowSpec::QUARTER_HOUR),
];

/// Quantiles reported for every windowed latency series.
const QUANTILES: [(&str, f64); 3] = [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)];

/// One latency series: request count, error count, and the two rolling
/// windows of observed latencies (microseconds).
#[derive(Debug)]
struct Series {
    count: u64,
    errors: u64,
    windows: [WindowedHistogram; 2],
}

impl Series {
    fn new() -> Series {
        Series {
            count: 0,
            errors: 0,
            windows: [
                WindowedHistogram::new(WINDOWS[0].1),
                WindowedHistogram::new(WINDOWS[1].1),
            ],
        }
    }

    fn record(&mut self, now_ns: u64, ok: bool, latency_us: u64) {
        self.count += 1;
        if !ok {
            self.errors += 1;
        }
        for w in &mut self.windows {
            w.record(now_ns, latency_us as f64);
        }
    }

    fn snapshots(&mut self, now_ns: u64) -> [WindowSnapshot; 2] {
        [
            self.windows[0].snapshot(now_ns),
            self.windows[1].snapshot(now_ns),
        ]
    }
}

/// The daemon's continuous telemetry state (hold behind a mutex).
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    verbs: Vec<Series>,
    eco_classes: Vec<Series>,
}

/// The index into [`VERBS`] a wire verb records under.
pub fn verb_index(verb: &str) -> usize {
    VERBS
        .iter()
        .position(|v| *v == verb)
        .unwrap_or(VERBS.len() - 1)
}

/// The index into [`ECO_CLASSES`] for a change class.
pub fn eco_class_index(class: &str) -> Option<usize> {
    ECO_CLASSES.iter().position(|c| *c == class)
}

impl Telemetry {
    /// Fresh telemetry; the construction instant is the daemon epoch
    /// uptime and windows are measured against.
    pub fn new() -> Telemetry {
        Telemetry {
            epoch: Instant::now(),
            verbs: VERBS.iter().map(|_| Series::new()).collect(),
            eco_classes: ECO_CLASSES.iter().map(|_| Series::new()).collect(),
        }
    }

    /// Nanoseconds since the daemon epoch — the clock every window call
    /// uses.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Seconds since the daemon epoch.
    pub fn uptime_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Records one handled request line.
    pub fn record_request(&mut self, verb: usize, ok: bool, latency_us: u64) {
        let now = self.now_ns();
        self.verbs[verb].record(now, ok, latency_us);
    }

    /// Records an accepted `eco` under its dominant change class.
    pub fn record_eco_class(&mut self, class: usize, latency_us: u64) {
        let now = self.now_ns();
        self.eco_classes[class].record(now, true, latency_us);
    }

    /// The telemetry block of the session-less `metrics` reply:
    /// per-verb counts/errors and windowed quantiles (series with no
    /// traffic yet are omitted), plus the same per-ECO-class view.
    pub fn json(&mut self) -> Json {
        let now = self.now_ns();
        let verbs = series_json(&mut self.verbs, &VERBS, now);
        let classes = series_json(&mut self.eco_classes, &ECO_CLASSES, now);
        Json::obj(vec![("verbs", verbs), ("eco_classes", classes)])
    }
}

fn series_json(series: &mut [Series], labels: &[&str], now_ns: u64) -> Json {
    let mut out: Vec<(String, Json)> = Vec::new();
    for (label, s) in labels.iter().zip(series.iter_mut()) {
        if s.count == 0 {
            continue;
        }
        let mut pairs = vec![
            ("count", Json::from(s.count)),
            ("errors", Json::from(s.errors)),
        ];
        let snaps = s.snapshots(now_ns);
        let mut windows: Vec<(String, Json)> = Vec::new();
        for ((wname, _), snap) in WINDOWS.iter().zip(&snaps) {
            windows.push((
                (*wname).to_owned(),
                Json::obj(vec![
                    ("count", Json::from(snap.count)),
                    ("p50_us", Json::Num(snap.quantile(0.5))),
                    ("p95_us", Json::Num(snap.quantile(0.95))),
                    ("p99_us", Json::Num(snap.quantile(0.99))),
                ]),
            ));
        }
        pairs.push(("windows", Json::Obj(windows)));
        out.push(((*label).to_owned(), Json::obj(pairs)));
    }
    Json::Obj(out)
}

/// Point-in-time daemon gauges the exposition combines with the
/// windowed series. The caller (the server) gathers these from its own
/// state and the obs runtime.
#[derive(Clone, Copy, Debug, Default)]
pub struct DaemonGauges {
    /// Live sessions.
    pub sessions: usize,
    /// Requests handled since boot (well-formed or not).
    pub requests_total: u64,
    /// Error responses since boot.
    pub errors_total: u64,
    /// Cached per-net results summed over sessions.
    pub cached_results: u64,
    /// Cached symbolic patterns summed over sessions.
    pub cached_patterns: u64,
    /// AWE solves summed over session stats.
    pub solves_total: u64,
    /// Result-cache hits summed over session stats.
    pub cache_hits_total: u64,
    /// Symbolic-pattern hits summed over session stats.
    pub pattern_hits_total: u64,
    /// Live obs lanes (0 when no recording is active).
    pub obs_lanes: usize,
    /// Events currently held across live obs lanes.
    pub obs_lane_events: usize,
    /// Events lost to ring overflow in the live recording.
    pub obs_ring_dropped: u64,
    /// Anomalous health events observed process-wide.
    pub anomalies_total: u64,
    /// Flight-recorder dumps written.
    pub flight_dumps_total: u64,
}

/// Renders the exposition document: Prometheus text format 0.0.4, one
/// family per daemon signal, windowed latency series with `verb`/
/// `class`, `window` and `quantile` labels. Series with no traffic are
/// omitted (their families still get `# TYPE` headers).
pub fn render_prometheus(t: &mut Telemetry, g: &DaemonGauges) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    let gauge = |out: &mut String, name: &str, help: &str, value: String| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    };
    gauge(
        &mut out,
        "awesim_uptime_seconds",
        "Daemon uptime.",
        format!("{:.3}", t.uptime_s()),
    );
    gauge(
        &mut out,
        "awesim_sessions",
        "Live sessions.",
        g.sessions.to_string(),
    );
    let counters: [(&str, &str, u64); 10] = [
        (
            "awesim_requests_total",
            "Requests handled (well-formed or not).",
            g.requests_total,
        ),
        (
            "awesim_request_errors_total",
            "Error responses.",
            g.errors_total,
        ),
        (
            "awesim_cached_results",
            "Cached per-net results across sessions.",
            g.cached_results,
        ),
        (
            "awesim_cached_patterns",
            "Cached symbolic patterns across sessions.",
            g.cached_patterns,
        ),
        (
            "awesim_solves_total",
            "AWE solves across session lifetimes.",
            g.solves_total,
        ),
        (
            "awesim_cache_hits_total",
            "Result-cache hits across session lifetimes.",
            g.cache_hits_total,
        ),
        (
            "awesim_pattern_hits_total",
            "Symbolic-pattern hits across session lifetimes.",
            g.pattern_hits_total,
        ),
        (
            "awesim_obs_ring_dropped_total",
            "Events lost to lane ring overflow.",
            g.obs_ring_dropped,
        ),
        (
            "awesim_anomalies_total",
            "Anomalous numerical-health events.",
            g.anomalies_total,
        ),
        (
            "awesim_flight_dumps_total",
            "Flight-recorder dumps written.",
            g.flight_dumps_total,
        ),
    ];
    for (name, help, value) in counters {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    gauge(
        &mut out,
        "awesim_obs_lanes",
        "Live trace lanes.",
        g.obs_lanes.to_string(),
    );
    gauge(
        &mut out,
        "awesim_obs_lane_events",
        "Events held across live trace lanes.",
        g.obs_lane_events.to_string(),
    );

    let now = t.now_ns();
    let _ = writeln!(
        out,
        "# HELP awesim_requests_verb_total Requests handled per verb."
    );
    let _ = writeln!(out, "# TYPE awesim_requests_verb_total counter");
    for (verb, s) in VERBS.iter().zip(t.verbs.iter()) {
        if s.count > 0 {
            let _ = writeln!(
                out,
                "awesim_requests_verb_total{{verb=\"{verb}\"}} {}",
                s.count
            );
        }
    }
    render_latency_family(
        &mut out,
        "awesim_request_latency_us",
        "Request latency by verb over rolling windows (microseconds).",
        "verb",
        &VERBS,
        &mut t.verbs,
        now,
    );
    render_latency_family(
        &mut out,
        "awesim_eco_class_latency_us",
        "Accepted-ECO latency by dominant change class over rolling windows (microseconds).",
        "class",
        &ECO_CLASSES,
        &mut t.eco_classes,
        now,
    );
    out
}

fn render_latency_family(
    out: &mut String,
    name: &str,
    help: &str,
    label: &str,
    labels: &[&str],
    series: &mut [Series],
    now_ns: u64,
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (value, s) in labels.iter().zip(series.iter_mut()) {
        if s.count == 0 {
            continue;
        }
        let snaps = s.snapshots(now_ns);
        for ((wname, _), snap) in WINDOWS.iter().zip(&snaps) {
            let _ = writeln!(
                out,
                "{name}_count{{{label}=\"{value}\",window=\"{wname}\"}} {}",
                snap.count
            );
            for (qname, q) in QUANTILES {
                let _ = writeln!(
                    out,
                    "{name}{{{label}=\"{value}\",window=\"{wname}\",quantile=\"{qname}\"}} {:.1}",
                    snap.quantile(q)
                );
            }
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

/// Renders the session-less `metrics` reply as the `awesim stats` text
/// dashboard. Takes the whole response object (so it is testable against
/// a canned reply); unknown or missing fields render as `-` rather than
/// failing, keeping the CLI usable against older daemons.
pub fn render_stats(reply: &Json) -> String {
    use std::fmt::Write as _;
    let num = |j: Option<&Json>| -> String {
        match j.and_then(Json::as_f64) {
            Some(v) if v.fract() == 0.0 => format!("{}", v as i64),
            Some(v) => format!("{v:.1}"),
            None => "-".to_owned(),
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "awesim daemon — up {} s, {} sessions",
        num(reply.get("uptime_s")),
        num(reply.get("sessions")),
    );
    let _ = writeln!(
        out,
        "  requests {} ({} errors)   anomalies {}   flight dumps {}",
        num(reply.get("requests")),
        num(reply.get("errors")),
        num(reply.get("anomalies")),
        num(reply.get("flight_dumps")),
    );
    let _ = writeln!(
        out,
        "  obs lanes {} holding {} events ({} dropped)",
        num(reply.get("obs_lanes")),
        num(reply.get("obs_lane_events")),
        num(reply.get("obs_ring_dropped")),
    );
    if let Some(path) = reply.get("last_flight_dump").and_then(Json::as_str) {
        let _ = writeln!(out, "  last flight dump: {path}");
    }
    let telemetry = reply.get("telemetry");
    for (section, title) in [("verbs", "verb"), ("eco_classes", "eco class")] {
        let Some(Json::Obj(series)) = telemetry.and_then(|t| t.get(section)) else {
            continue;
        };
        if series.is_empty() {
            continue;
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  {title:<12} {:>8}  {:>6} | {:>8} {:>8} {:>8} (60s) | {:>8} {:>8} {:>8} (900s)",
            "count", "errors", "p50us", "p95us", "p99us", "p50us", "p95us", "p99us",
        );
        for (label, s) in series {
            let mut row = format!(
                "  {label:<12} {:>8}  {:>6}",
                num(s.get("count")),
                num(s.get("errors")),
            );
            for wname in ["60s", "900s"] {
                let w = s.get("windows").and_then(|w| w.get(wname));
                let _ = write!(
                    row,
                    " | {:>8} {:>8} {:>8}",
                    num(w.and_then(|w| w.get("p50_us"))),
                    num(w.and_then(|w| w.get("p95_us"))),
                    num(w.and_then(|w| w.get("p99_us"))),
                );
            }
            let _ = writeln!(out, "{row}");
        }
    }
    out
}
