//! Moment matching: moments → approximating poles (paper eqs. (24)–(25))
//! with the frequency scaling of §3.5.
//!
//! The scalar moment sequence `[m_{-1}, m_0, …, m_{2q-2}]` of one response
//! component feeds the Hankel system of eq. (24); its solution defines the
//! characteristic polynomial in the reciprocal-pole variable `x = 1/p`
//! (eq. (25)), whose roots invert to the approximating poles.
//!
//! Stiff circuits make the raw moments span many decades and the Hankel
//! matrix numerically singular; §3.5's remedy is to normalize by a
//! characteristic time `γ ≈ m₀/m₋₁` (the reciprocal dominant pole), solve
//! the scaled system, and scale the poles back. We expose scaling as an
//! option so the ablation bench can quantify exactly what it buys.

use awe_numeric::{roots, solve_char_poly, symmetrize_conjugates, Complex, NumericError};

use crate::error::AweError;

/// Options for the moment-matching step.
#[derive(Clone, Copy, Debug)]
pub struct PadeOptions {
    /// Apply §3.5 frequency scaling before solving eq. (24). Default on.
    pub frequency_scaling: bool,
    /// Relative tolerance for snapping nearly-real poles onto the real
    /// axis and pairing conjugates.
    pub conjugate_tol: f64,
}

impl Default for PadeOptions {
    fn default() -> Self {
        PadeOptions {
            frequency_scaling: true,
            conjugate_tol: 1e-7,
        }
    }
}

/// Result of the moment-matching step.
#[derive(Clone, Debug)]
pub struct PadeResult {
    /// The `q` approximating poles (conjugate-symmetrized).
    pub poles: Vec<Complex>,
    /// Condition estimate of the (scaled) moment matrix.
    pub condition: f64,
    /// The frequency scale `γ` that was applied (`1.0` when disabled).
    pub gamma: f64,
}

/// Characteristic time used for frequency scaling (the role of eq. (47)'s
/// `γ = m₋₁/m₀`). The *highest* valid consecutive ratio is used rather
/// than the first: high moments are dominated by the reciprocal dominant
/// pole exactly, whereas `m₋₁` can be pure subtraction noise for pulse
/// responses (`Σk = 0`), which would poison a first-ratio estimate.
pub fn scale_factor(moments: &[f64]) -> f64 {
    for w in moments.windows(2).rev() {
        if w[0].abs() > 0.0 && w[1].abs() > 0.0 {
            let g = (w[1] / w[0]).abs();
            if g.is_finite() && g > 0.0 {
                return g;
            }
        }
    }
    1.0
}

/// Snaps a rounding-noise `m₋₁` to exact zero. `m₋₁ = Σ k` comes from a
/// subtraction of near-equal quantities (`x(0⁺) - x_p(0)`), so for pulse
/// responses it lands at the noise floor instead of the exact zero the
/// physics dictates — and a noise-floor leading entry badly conditions
/// the Hankel solve. The test compares `m₋₁` against the residue scale
/// `|m₀|/γ` implied by the rest of the sequence.
fn snap_leading_noise(moments: &mut [f64], gamma: f64) {
    if moments.len() < 2 || moments[0] == 0.0 || gamma <= 0.0 {
        return;
    }
    let k_scale = (moments[1] / gamma).abs();
    if k_scale > 0.0 && moments[0].abs() < 1e-9 * k_scale {
        moments[0] = 0.0;
    }
}

/// Computes the `q` approximating poles from the scalar moment sequence
/// `[m_{-1}, m_0, …]` (at least `2q` entries, the convention of
/// [`awe_mna::MomentEngine`]).
///
/// # Errors
///
/// * [`AweError::BadOrder`] if `q == 0` or too few moments are supplied.
/// * [`AweError::MomentMatrixSingular`] if eq. (24) cannot be solved at
///   this order even with scaling; the payload reports the largest order
///   that does solve, so callers can back off.
///
/// # Examples
///
/// ```
/// use awe::pade::{match_poles, PadeOptions};
///
/// # fn main() -> Result<(), awe::AweError> {
/// // Moments of 2e^{-t} + e^{-10t}: m_j = 2·(-1)^{j+1} + (-0.1)^{j+1}.
/// let m: Vec<f64> = (0..4)
///     .map(|r| 2.0 * (-1.0f64).powi(r) + (-0.1f64).powi(r))
///     .collect();
/// let result = match_poles(&m, 2, PadeOptions::default())?;
/// let mut re: Vec<f64> = result.poles.iter().map(|p| p.re).collect();
/// re.sort_by(f64::total_cmp);
/// assert!((re[0] + 10.0).abs() < 1e-6);
/// assert!((re[1] + 1.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn match_poles(
    moments: &[f64],
    q: usize,
    options: PadeOptions,
) -> Result<PadeResult, AweError> {
    if q == 0 || moments.len() < 2 * q {
        return Err(AweError::BadOrder { order: q });
    }
    let gamma = if options.frequency_scaling {
        scale_factor(moments)
    } else {
        1.0
    };
    // Scaled moments: m̃_j = m_j / γ^{j+1} (sequence index r ↔ j = r-1,
    // so divide entry r by γ^r).
    let mut scaled: Vec<f64> = moments
        .iter()
        .enumerate()
        .map(|(r, &m)| m / gamma.powi(r as i32))
        .collect();
    snap_leading_noise(&mut scaled, 1.0);

    let cp = match solve_char_poly(&scaled, q) {
        Ok(cp) => cp,
        Err(NumericError::Singular { .. }) => {
            // Report the largest solvable order for graceful back-off.
            let mut achievable = 0;
            for qq in (1..q).rev() {
                if solve_char_poly(&scaled, qq).is_ok() {
                    achievable = qq;
                    break;
                }
            }
            return Err(AweError::MomentMatrixSingular {
                order: q,
                achievable,
            });
        }
        Err(e) => return Err(e.into()),
    };

    // Roots are scaled reciprocal poles x̃ = x/γ = 1/(γ·p) → p = 1/(γ·x̃).
    let recips = roots(&cp.poly)?;
    let mut poles: Vec<Complex> = recips
        .iter()
        .map(|x| {
            if x.abs() == 0.0 {
                // Zero root of the characteristic polynomial: an
                // infinitely fast pole; map to a huge negative value.
                Complex::real(f64::NEG_INFINITY)
            } else {
                (*x * gamma).recip()
            }
        })
        .collect();
    symmetrize_conjugates(&mut poles, options.conjugate_tol);
    // Sort dominant (slowest, largest re) first for readability.
    poles.sort_by(|a, b| {
        b.re.partial_cmp(&a.re)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.im.partial_cmp(&b.im).unwrap_or(std::cmp::Ordering::Equal))
    });
    Ok(PadeResult {
        poles,
        condition: cp.condition,
        gamma,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Moments (our convention) of Σ kᵢ e^{pᵢ t}: entry r = Σ kᵢ pᵢ^{-r}.
    fn moments_of(ks: &[f64], ps: &[f64], count: usize) -> Vec<f64> {
        (0..count)
            .map(|r| {
                ks.iter()
                    .zip(ps)
                    .map(|(k, p)| k * p.powi(-(r as i32)))
                    .sum()
            })
            .collect()
    }

    #[test]
    fn exact_recovery_orders_1_to_4() {
        let ps = [-1.0, -7.0, -30.0, -200.0];
        let ks = [1.0, -0.4, 0.2, -0.05];
        for q in 1..=4usize {
            let m = moments_of(&ks[..q], &ps[..q], 2 * q);
            let r = match_poles(&m, q, PadeOptions::default()).unwrap();
            assert_eq!(r.poles.len(), q);
            let mut found: Vec<f64> = r.poles.iter().map(|p| p.re).collect();
            found.sort_by(|a, b| b.total_cmp(a));
            for (f, e) in found.iter().zip(&ps[..q]) {
                assert!(
                    ((f - e) / e).abs() < 1e-6,
                    "q={q}: pole {f} vs expected {e}"
                );
            }
        }
    }

    #[test]
    fn complex_pole_recovery() {
        // Conjugate pair: moments of 2·Re(k e^{pt}).
        let p = Complex::new(-1.0, 5.0);
        let k = Complex::new(0.5, 0.3);
        let m: Vec<f64> = (0..4).map(|r| 2.0 * (k * p.powi(-r)).re).collect();
        let r = match_poles(&m, 2, PadeOptions::default()).unwrap();
        assert!(
            r.poles.iter().any(|z| (*z - p).abs() < 1e-8),
            "{:?}",
            r.poles
        );
        assert!(r.poles.iter().any(|z| (*z - p.conj()).abs() < 1e-8));
        // Exact conjugate symmetry after snapping.
        assert_eq!(r.poles[0].re, r.poles[1].re);
        assert_eq!(r.poles[0].im, -r.poles[1].im);
    }

    #[test]
    fn scaling_rescues_stiff_moments() {
        // Poles spread over 6 decades at physical (1e9-ish) magnitudes:
        // raw moments overflow the Hankel conditioning without scaling.
        let ps = [-1e9, -3e11, -2e13];
        let ks = [5.0, -1.0, 0.3];
        let m = moments_of(&ks, &ps, 6);
        let scaled = match_poles(&m, 3, PadeOptions::default()).unwrap();
        let mut found: Vec<f64> = scaled.poles.iter().map(|p| p.re).collect();
        found.sort_by(|a, b| b.total_cmp(a));
        for (f, e) in found.iter().zip(&ps) {
            assert!(((f - e) / e).abs() < 1e-4, "pole {f} vs {e}");
        }
        assert!(scaled.gamma > 0.0 && scaled.gamma != 1.0);
    }

    #[test]
    fn equilibration_tames_the_unscaled_solve_too() {
        // Historical note: before the Hankel solver equilibrated its
        // rows and columns, turning §3.5 scaling off on a four-decade
        // pole spread either failed outright or reported a condition
        // ~1e6× worse than the scaled solve. The geometric grading of
        // the moment rows is exactly what powers-of-two equilibration
        // removes, so the unscaled solve is now comparably conditioned
        // — and must recover the same poles.
        let ps = [-1e9, -3e11, -2e13];
        let ks = [5.0, -1.0, 0.3];
        let m = moments_of(&ks, &ps, 6);
        let on = match_poles(&m, 3, PadeOptions::default()).unwrap();
        let off = match_poles(
            &m,
            3,
            PadeOptions {
                frequency_scaling: false,
                ..PadeOptions::default()
            },
        )
        .unwrap();
        assert!(
            off.condition < on.condition * 1e3,
            "scaled cond {} vs unscaled {}",
            on.condition,
            off.condition
        );
        let mut found: Vec<f64> = off.poles.iter().map(|p| p.re).collect();
        found.sort_by(|a, b| b.total_cmp(a));
        for (f, e) in found.iter().zip(&ps) {
            assert!(((f - e) / e).abs() < 1e-4, "pole {f} vs {e}");
        }
    }

    #[test]
    fn order_above_rank_reports_achievable() {
        let m = moments_of(&[1.0], &[-2.0], 8);
        match match_poles(&m, 3, PadeOptions::default()) {
            Err(AweError::MomentMatrixSingular {
                order: 3,
                achievable,
            }) => {
                assert_eq!(achievable, 1);
            }
            Ok(r) => {
                // Rounding may let it "solve"; condition must be huge.
                assert!(r.condition > 1e10);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_order_inputs() {
        assert!(matches!(
            match_poles(&[1.0, 2.0], 0, PadeOptions::default()),
            Err(AweError::BadOrder { order: 0 })
        ));
        assert!(matches!(
            match_poles(&[1.0, 2.0], 2, PadeOptions::default()),
            Err(AweError::BadOrder { order: 2 })
        ));
    }

    #[test]
    fn scale_factor_fallbacks() {
        assert_eq!(scale_factor(&[2.0, 1.0]), 0.5);
        // Leading zero moment: use the next ratio.
        assert_eq!(scale_factor(&[0.0, 2.0, 1.0]), 0.5);
        assert_eq!(scale_factor(&[0.0, 0.0]), 1.0);
    }
}
