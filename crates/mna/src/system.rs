//! Modified nodal analysis system assembly.
//!
//! Builds the descriptor form
//!
//! ```text
//! G·x(t) + C·ẋ(t) = B·u(t)
//! ```
//!
//! where `x` stacks the non-ground node voltages and the branch currents of
//! voltage-defined elements (independent V sources, VCVS/CCVS, inductors),
//! and `u` stacks the independent source values. This is the concrete form
//! of the paper's state equations (4): for a regular `C` the state matrix
//! is `A = -C⁻¹G` restricted to the dynamic subspace, and the moment
//! recursion of §3.2 becomes `m_{k+1} = (-G⁻¹C)·m_k` — one LU
//! factorization of `G`, then a matrix-vector product and resubstitution
//! per moment.

use std::collections::HashMap;

use awe_circuit::{Circuit, Element, NodeId, Waveform, GROUND};
use awe_numeric::Matrix;

use crate::error::MnaError;

/// Where a capacitor sits in the system: the two node unknowns (or `None`
/// for ground) and its value. Used to apply `C·x` element-wise and to set
/// initial charge.
#[derive(Clone, Copy, Debug)]
pub struct CapEntry {
    /// Unknown index of terminal `a`, `None` if grounded.
    pub ia: Option<usize>,
    /// Unknown index of terminal `b`, `None` if grounded.
    pub ib: Option<usize>,
    /// Capacitance in farads.
    pub farads: f64,
    /// Explicit initial voltage, if any.
    pub initial_voltage: Option<f64>,
    /// Element index in the source circuit.
    pub element: usize,
}

/// Where an inductor sits in the system: its branch-current unknown and the
/// node unknowns.
#[derive(Clone, Copy, Debug)]
pub struct IndEntry {
    /// Unknown index of the branch current.
    pub branch: usize,
    /// Unknown index of terminal `a`, `None` if grounded.
    pub ia: Option<usize>,
    /// Unknown index of terminal `b`, `None` if grounded.
    pub ib: Option<usize>,
    /// Inductance in henries.
    pub henries: f64,
    /// Explicit initial current, if any.
    pub initial_current: Option<f64>,
    /// Element index in the source circuit.
    pub element: usize,
}

/// An independent source column of `B`.
#[derive(Clone, Debug)]
pub struct SourceEntry {
    /// Element name.
    pub name: String,
    /// Source waveform (cloned from the circuit).
    pub waveform: Waveform,
    /// Element index in the source circuit.
    pub element: usize,
}

/// A *floating group* (paper §3.1): a maximal set of nodes connected to
/// the rest of the circuit only through capacitors, so its DC state is
/// fixed by charge conservation rather than by conductive equilibrium.
#[derive(Clone, Debug)]
pub struct FloatingGroup {
    /// Unknown indices of the member node voltages.
    pub members: Vec<usize>,
    /// The KCL row replaced by the charge-conservation row in `G̃`.
    pub replaced_row: usize,
    /// The charge functional `Q(x) = Σ_j charge_row[j]·x[j]`: the total
    /// charge the group's boundary capacitors hold (internal capacitors
    /// cancel in the sum).
    pub charge_row: Vec<f64>,
    /// The group's initial charge, from explicit capacitor ICs (zero for
    /// capacitors without one): the value `Q` must hold at `t = 0⁻`.
    pub initial_charge: f64,
}

/// Assembled MNA descriptor system for a circuit.
#[derive(Clone, Debug)]
pub struct MnaSystem {
    /// Conductance/topology matrix `G`.
    pub g: Matrix,
    /// Energy-storage matrix `C` (capacitances and inductances).
    pub c: Matrix,
    /// Source incidence matrix `B` (`n × num_sources`).
    pub b: Matrix,
    /// Charge-aware conductance matrix `G̃`: `G` with one KCL row per
    /// floating group replaced by that group's charge-conservation row.
    /// Identical to `g` when no floating groups exist.
    pub g_tilde: Matrix,
    /// `C` with the replaced rows zeroed (the descriptor partner of
    /// `g_tilde`). Identical to `c` when no floating groups exist.
    pub c_tilde: Matrix,
    /// Floating groups (§3.1), empty for ordinary circuits.
    pub floating: Vec<FloatingGroup>,
    /// Independent sources, in `B`-column order.
    pub sources: Vec<SourceEntry>,
    /// Capacitor bookkeeping.
    pub caps: Vec<CapEntry>,
    /// Inductor bookkeeping.
    pub inductors: Vec<IndEntry>,
    node_unknown: Vec<Option<usize>>,
    branch_of: HashMap<String, usize>,
    num_unknowns: usize,
}

impl MnaSystem {
    /// Assembles the MNA system for `circuit`.
    ///
    /// # Errors
    ///
    /// [`MnaError::MissingControlBranch`] if a CCCS/CCVS references a
    /// voltage source that was not stamped (not expected for validated
    /// circuits).
    pub fn build(circuit: &Circuit) -> Result<MnaSystem, MnaError> {
        Self::build_reusing(circuit, None)
    }

    /// Assembles the MNA system for `circuit` like [`MnaSystem::build`],
    /// but reuses the matrices, index maps and bookkeeping vectors of a
    /// retired system instead of allocating fresh ones. This is the single
    /// assembly code path — `build` delegates here — so the produced
    /// system is bit-identical to a from-scratch build; only the backing
    /// allocations differ. The batch tape VM threads each worker's
    /// previous system through here to restamp structure-group members
    /// without per-net allocation. `recycle` may come from *any* circuit;
    /// every structural field is rederived.
    ///
    /// # Errors
    ///
    /// Identical to [`MnaSystem::build`].
    pub fn build_reusing(
        circuit: &Circuit,
        recycle: Option<MnaSystem>,
    ) -> Result<MnaSystem, MnaError> {
        let MnaSystem {
            mut g,
            mut c,
            mut b,
            mut g_tilde,
            mut c_tilde,
            mut floating,
            mut sources,
            mut caps,
            mut inductors,
            mut node_unknown,
            mut branch_of,
            ..
        } = recycle.unwrap_or_else(|| MnaSystem {
            g: Matrix::zeros(0, 0),
            c: Matrix::zeros(0, 0),
            b: Matrix::zeros(0, 0),
            g_tilde: Matrix::zeros(0, 0),
            c_tilde: Matrix::zeros(0, 0),
            floating: Vec::new(),
            sources: Vec::new(),
            caps: Vec::new(),
            inductors: Vec::new(),
            node_unknown: Vec::new(),
            branch_of: HashMap::new(),
            num_unknowns: 0,
        });
        // Pass 1: number the unknowns. Node voltages first (ground
        // excluded), then branch currents for V, E, H, L in element order.
        node_unknown.clear();
        node_unknown.resize(circuit.num_nodes(), None);
        branch_of.clear();
        let mut next = 0usize;
        for node in 0..circuit.num_nodes() {
            if node != GROUND {
                node_unknown[node] = Some(next);
                next += 1;
            }
        }
        for e in circuit.elements() {
            match e {
                Element::VoltageSource { name, .. }
                | Element::Vcvs { name, .. }
                | Element::Ccvs { name, .. }
                | Element::Inductor { name, .. } => {
                    branch_of.insert(name.clone(), next);
                    next += 1;
                }
                _ => {}
            }
        }
        let n = next;

        g.reset_zeros(n, n);
        c.reset_zeros(n, n);
        sources.clear();
        caps.clear();
        inductors.clear();

        // First collect sources so B has stable column count.
        for (idx, e) in circuit.elements().iter().enumerate() {
            match e {
                Element::VoltageSource { name, waveform, .. }
                | Element::CurrentSource { name, waveform, .. } => sources.push(SourceEntry {
                    name: name.clone(),
                    waveform: waveform.clone(),
                    element: idx,
                }),
                _ => {}
            }
        }
        b.reset_zeros(n, sources.len());
        let source_col: HashMap<&str, usize> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.as_str(), i))
            .collect();

        let un = |node: NodeId| -> Option<usize> { node_unknown[node] };

        // Pass 2: stamps.
        for (idx, e) in circuit.elements().iter().enumerate() {
            match e {
                Element::Resistor { a, b: bb, ohms, .. } => {
                    let gval = 1.0 / ohms;
                    stamp_conductance(&mut g, un(*a), un(*bb), gval);
                }
                Element::Capacitor {
                    a,
                    b: bb,
                    farads,
                    initial_voltage,
                    ..
                } => {
                    stamp_conductance(&mut c, un(*a), un(*bb), *farads);
                    caps.push(CapEntry {
                        ia: un(*a),
                        ib: un(*bb),
                        farads: *farads,
                        initial_voltage: *initial_voltage,
                        element: idx,
                    });
                }
                Element::Inductor {
                    name,
                    a,
                    b: bb,
                    henries,
                    initial_current,
                } => {
                    let m = branch_of[name.as_str()];
                    // KCL: current m leaves a, enters b.
                    if let Some(ia) = un(*a) {
                        g[(ia, m)] += 1.0;
                    }
                    if let Some(ib) = un(*bb) {
                        g[(ib, m)] -= 1.0;
                    }
                    // Branch: v_a - v_b - L·di/dt = 0.
                    if let Some(ia) = un(*a) {
                        g[(m, ia)] += 1.0;
                    }
                    if let Some(ib) = un(*bb) {
                        g[(m, ib)] -= 1.0;
                    }
                    c[(m, m)] -= henries;
                    inductors.push(IndEntry {
                        branch: m,
                        ia: un(*a),
                        ib: un(*bb),
                        henries: *henries,
                        initial_current: *initial_current,
                        element: idx,
                    });
                }
                Element::VoltageSource { name, pos, neg, .. } => {
                    let m = branch_of[name.as_str()];
                    let col = source_col[name.as_str()];
                    if let Some(ip) = un(*pos) {
                        g[(ip, m)] += 1.0;
                    }
                    if let Some(inn) = un(*neg) {
                        g[(inn, m)] -= 1.0;
                    }
                    if let Some(ip) = un(*pos) {
                        g[(m, ip)] += 1.0;
                    }
                    if let Some(inn) = un(*neg) {
                        g[(m, inn)] -= 1.0;
                    }
                    b[(m, col)] = 1.0;
                }
                Element::CurrentSource { name, from, to, .. } => {
                    let col = source_col[name.as_str()];
                    // Current u leaves `from` through the source: KCL row
                    // gains -u on the RHS at `from`, +u at `to`.
                    if let Some(i) = un(*from) {
                        b[(i, col)] -= 1.0;
                    }
                    if let Some(i) = un(*to) {
                        b[(i, col)] += 1.0;
                    }
                }
                Element::Vccs {
                    from,
                    to,
                    cpos,
                    cneg,
                    gm,
                    ..
                } => {
                    // i(from→to) = gm (v_cp - v_cn): add to KCL rows.
                    for (row, sign) in [(un(*from), 1.0), (un(*to), -1.0)] {
                        if let Some(r) = row {
                            if let Some(cp) = un(*cpos) {
                                g[(r, cp)] += sign * gm;
                            }
                            if let Some(cn) = un(*cneg) {
                                g[(r, cn)] -= sign * gm;
                            }
                        }
                    }
                }
                Element::Vcvs {
                    name,
                    pos,
                    neg,
                    cpos,
                    cneg,
                    gain,
                } => {
                    let m = branch_of[name.as_str()];
                    if let Some(ip) = un(*pos) {
                        g[(ip, m)] += 1.0;
                        g[(m, ip)] += 1.0;
                    }
                    if let Some(inn) = un(*neg) {
                        g[(inn, m)] -= 1.0;
                        g[(m, inn)] -= 1.0;
                    }
                    if let Some(cp) = un(*cpos) {
                        g[(m, cp)] -= gain;
                    }
                    if let Some(cn) = un(*cneg) {
                        g[(m, cn)] += gain;
                    }
                }
                Element::Cccs {
                    name,
                    from,
                    to,
                    control,
                    gain,
                } => {
                    let mv = *branch_of
                        .get(control.as_str())
                        .ok_or_else(|| MnaError::MissingControlBranch(name.clone()))?;
                    if let Some(i) = un(*from) {
                        g[(i, mv)] += gain;
                    }
                    if let Some(i) = un(*to) {
                        g[(i, mv)] -= gain;
                    }
                }
                Element::Ccvs {
                    name,
                    pos,
                    neg,
                    control,
                    r,
                } => {
                    let m = branch_of[name.as_str()];
                    let mv = *branch_of
                        .get(control.as_str())
                        .ok_or_else(|| MnaError::MissingControlBranch(name.clone()))?;
                    if let Some(ip) = un(*pos) {
                        g[(ip, m)] += 1.0;
                        g[(m, ip)] += 1.0;
                    }
                    if let Some(inn) = un(*neg) {
                        g[(inn, m)] -= 1.0;
                        g[(m, inn)] -= 1.0;
                    }
                    g[(m, mv)] -= r;
                }
            }
        }

        // Detect floating groups (§3.1): connected components over
        // *conductive* edges (R, L, V, E, H) that do not reach ground.
        let mut uf: Vec<usize> = (0..circuit.num_nodes()).collect();
        fn find(uf: &mut [usize], mut x: usize) -> usize {
            while uf[x] != x {
                uf[x] = uf[uf[x]];
                x = uf[x];
            }
            x
        }
        for e in circuit.elements() {
            let conductive = matches!(
                e,
                Element::Resistor { .. }
                    | Element::Inductor { .. }
                    | Element::VoltageSource { .. }
                    | Element::Vcvs { .. }
                    | Element::Ccvs { .. }
            );
            if conductive {
                let (a_t, b_t) = e.terminals();
                let (ra, rb) = (find(&mut uf, a_t), find(&mut uf, b_t));
                if ra != rb {
                    uf[ra] = rb;
                }
            }
        }
        let ground_root = find(&mut uf, GROUND);
        let mut groups_by_root: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut touched = vec![false; circuit.num_nodes()];
        for e in circuit.elements() {
            for node in e.nodes() {
                touched[node] = true;
            }
        }
        for node in 0..circuit.num_nodes() {
            if node == GROUND || !touched[node] {
                continue;
            }
            let root = find(&mut uf, node);
            if root != ground_root {
                if let Some(iu) = node_unknown[node] {
                    groups_by_root.entry(root).or_default().push(iu);
                }
            }
        }

        g_tilde.copy_from(&g);
        c_tilde.copy_from(&c);
        floating.clear();
        for (_, members) in groups_by_root {
            let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();
            // Charge functional: boundary capacitors only (internal ones
            // cancel); equals the sum of the members' C rows.
            let mut charge_row = vec![0.0; n];
            let mut initial_charge = 0.0;
            for cap in &caps {
                let a_in = cap.ia.is_some_and(|i| member_set.contains(&i));
                let b_in = cap.ib.is_some_and(|i| member_set.contains(&i));
                if a_in == b_in {
                    continue; // internal or unrelated
                }
                let sign = if a_in { 1.0 } else { -1.0 };
                if let Some(ia) = cap.ia {
                    charge_row[ia] += sign * cap.farads;
                }
                if let Some(ib) = cap.ib {
                    charge_row[ib] -= sign * cap.farads;
                }
                initial_charge += sign * cap.farads * cap.initial_voltage.unwrap_or(0.0);
            }
            // A current source (independent or controlled) feeding the
            // group would pump its charge without bound: no DC solution.
            for e in circuit.elements() {
                let drives = match e {
                    Element::CurrentSource { from, to, .. }
                    | Element::Vccs { from, to, .. }
                    | Element::Cccs { from, to, .. } => {
                        let f_in = node_unknown[*from].is_some_and(|i| member_set.contains(&i));
                        let t_in = node_unknown[*to].is_some_and(|i| member_set.contains(&i));
                        f_in != t_in
                    }
                    _ => false,
                };
                if drives {
                    return Err(MnaError::NoDcSolution);
                }
            }
            let replaced_row = members[0];
            for j in 0..n {
                g_tilde[(replaced_row, j)] = charge_row[j];
                c_tilde[(replaced_row, j)] = 0.0;
            }
            floating.push(FloatingGroup {
                members,
                replaced_row,
                charge_row,
                initial_charge,
            });
        }

        Ok(MnaSystem {
            g,
            c,
            b,
            g_tilde,
            c_tilde,
            floating,
            sources,
            caps,
            inductors,
            node_unknown,
            branch_of,
            num_unknowns: n,
        })
    }

    /// `true` when the circuit contains §3.1 floating groups.
    pub fn has_floating_groups(&self) -> bool {
        !self.floating.is_empty()
    }

    /// Evaluates the charge functional of each floating group on `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the unknown count.
    pub fn group_charges(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.num_unknowns, "unknown count mismatch");
        self.floating
            .iter()
            .map(|g| g.charge_row.iter().zip(x).map(|(q, v)| q * v).sum())
            .collect()
    }

    /// `C̃·x` — like [`MnaSystem::c_times`] with the floating groups'
    /// replaced rows zeroed (the moment-recursion image).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the unknown count.
    pub fn c_tilde_times(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.num_unknowns, "unknown count mismatch");
        self.c_tilde.mul_vec(x)
    }

    /// Number of unknowns (node voltages plus branch currents).
    pub fn num_unknowns(&self) -> usize {
        self.num_unknowns
    }

    /// Unknown index of a node's voltage, or `None` for ground /
    /// out-of-range nodes.
    pub fn unknown_of_node(&self, node: NodeId) -> Option<usize> {
        self.node_unknown.get(node).copied().flatten()
    }

    /// Unknown index of a named element's branch current (V, E, H, L), or
    /// `None` if the element carries no branch unknown.
    pub fn branch_of(&self, name: &str) -> Option<usize> {
        self.branch_of.get(name).copied()
    }

    /// Source values at time `t`, in `B`-column order.
    pub fn source_values_at(&self, t: f64) -> Vec<f64> {
        self.sources.iter().map(|s| s.waveform.eval(t)).collect()
    }

    /// Source values before any transition (`t → -∞`).
    pub fn initial_source_values(&self) -> Vec<f64> {
        self.sources
            .iter()
            .map(|s| s.waveform.initial_value())
            .collect()
    }

    /// Final source values (after all breakpoints).
    pub fn final_source_values(&self) -> Vec<f64> {
        self.sources
            .iter()
            .map(|s| s.waveform.final_value())
            .collect()
    }

    /// `B·u` for a given source-value vector.
    ///
    /// # Panics
    ///
    /// Panics if `u.len()` differs from the number of sources.
    pub fn b_times(&self, u: &[f64]) -> Vec<f64> {
        assert_eq!(u.len(), self.sources.len(), "source count mismatch");
        self.b.mul_vec(u)
    }

    /// `B·u` into a caller-owned buffer — the allocation-free twin of
    /// [`MnaSystem::b_times`] for the batch replay path.
    ///
    /// # Panics
    ///
    /// Panics if `u.len()` differs from the number of sources.
    pub fn b_times_into(&self, u: &[f64], out: &mut Vec<f64>) {
        assert_eq!(u.len(), self.sources.len(), "source count mismatch");
        self.b.mul_vec_into(u, out);
    }

    /// `C·x` — the charge/flux image of a solution vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the unknown count.
    pub fn c_times(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.num_unknowns, "unknown count mismatch");
        self.c.mul_vec(x)
    }

    /// Capacitor voltage `v(a) - v(b)` read out of a solution vector.
    pub fn cap_voltage(&self, cap: &CapEntry, x: &[f64]) -> f64 {
        let va = cap.ia.map_or(0.0, |i| x[i]);
        let vb = cap.ib.map_or(0.0, |i| x[i]);
        va - vb
    }

    /// Inductor branch current read out of a solution vector.
    pub fn inductor_current(&self, ind: &IndEntry, x: &[f64]) -> f64 {
        x[ind.branch]
    }
}

/// Stamps a conductance-like value `g` between two unknowns (either may be
/// ground = `None`).
fn stamp_conductance(m: &mut Matrix, ia: Option<usize>, ib: Option<usize>, g: f64) {
    if let Some(a) = ia {
        m[(a, a)] += g;
    }
    if let Some(b) = ib {
        m[(b, b)] += g;
    }
    if let (Some(a), Some(b)) = (ia, ib) {
        m[(a, b)] -= g;
        m[(b, a)] -= g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awe_circuit::Waveform;
    use awe_numeric::lu_solve;

    /// Voltage divider: V=10 → R1=1k → n1 → R2=1k → gnd.
    fn divider() -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, Waveform::dc(10.0))
            .unwrap();
        ckt.add_resistor("R1", n_in, n1, 1e3).unwrap();
        ckt.add_resistor("R2", n1, GROUND, 1e3).unwrap();
        (ckt, n1)
    }

    #[test]
    fn divider_dc() {
        let (ckt, n1) = divider();
        let sys = MnaSystem::build(&ckt).unwrap();
        // Unknowns: v(in), v(n1), i(V1) = 3.
        assert_eq!(sys.num_unknowns(), 3);
        let u = sys.source_values_at(0.0);
        let x = lu_solve(&sys.g, &sys.b_times(&u)).unwrap();
        let i1 = sys.unknown_of_node(n1).unwrap();
        assert!((x[i1] - 5.0).abs() < 1e-9);
        // Source current: 10V across 2k = 5mA flowing out of V1.
        let iv = sys.branch_of("V1").unwrap();
        assert!((x[iv] + 5e-3).abs() < 1e-9, "i = {}", x[iv]);
    }

    #[test]
    fn unknown_mapping() {
        let (ckt, n1) = divider();
        let sys = MnaSystem::build(&ckt).unwrap();
        assert_eq!(sys.unknown_of_node(GROUND), None);
        assert!(sys.unknown_of_node(n1).is_some());
        assert_eq!(sys.branch_of("R1"), None);
        assert_eq!(sys.unknown_of_node(999), None);
    }

    #[test]
    fn capacitor_stamps_into_c_only() {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        ckt.add_capacitor_ic("C1", n1, n2, 2e-12, Some(1.5))
            .unwrap();
        ckt.add_resistor("R1", n1, GROUND, 1.0).unwrap();
        ckt.add_resistor("R2", n2, GROUND, 1.0).unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        let (i1, i2) = (
            sys.unknown_of_node(n1).unwrap(),
            sys.unknown_of_node(n2).unwrap(),
        );
        assert_eq!(sys.c[(i1, i1)], 2e-12);
        assert_eq!(sys.c[(i1, i2)], -2e-12);
        assert_eq!(sys.g[(i1, i2)], 0.0);
        assert_eq!(sys.caps.len(), 1);
        assert_eq!(sys.caps[0].initial_voltage, Some(1.5));
        // cap_voltage reads the difference.
        let mut x = vec![0.0; sys.num_unknowns()];
        x[i1] = 3.0;
        x[i2] = 1.0;
        assert_eq!(sys.cap_voltage(&sys.caps[0], &x), 2.0);
    }

    #[test]
    fn inductor_branch_equations() {
        // V --L--> n1 --R--> gnd. At DC: i = V/R, v(n1) = V.
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, Waveform::dc(2.0))
            .unwrap();
        ckt.add_inductor("L1", n_in, n1, 1e-9).unwrap();
        ckt.add_resistor("R1", n1, GROUND, 4.0).unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        let u = sys.source_values_at(0.0);
        let x = lu_solve(&sys.g, &sys.b_times(&u)).unwrap();
        let i1 = sys.unknown_of_node(n1).unwrap();
        assert!((x[i1] - 2.0).abs() < 1e-12);
        let il = sys.branch_of("L1").unwrap();
        assert!((x[il] - 0.5).abs() < 1e-12);
        assert_eq!(sys.inductors.len(), 1);
        assert_eq!(sys.inductor_current(&sys.inductors[0], &x), x[il]);
        // L stamps -L on the branch diagonal of C.
        assert_eq!(sys.c[(il, il)], -1e-9);
    }

    #[test]
    fn current_source_direction() {
        // I = 1 mA from ground into n1, R = 1k to ground: v(n1) = +1 V.
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        ckt.add_isource("I1", GROUND, n1, Waveform::dc(1e-3))
            .unwrap();
        ckt.add_resistor("R1", n1, GROUND, 1e3).unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        let u = sys.source_values_at(0.0);
        let x = lu_solve(&sys.g, &sys.b_times(&u)).unwrap();
        let i1 = sys.unknown_of_node(n1).unwrap();
        assert!((x[i1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vccs_stamp() {
        // V1=1V at nc; G1: i(gnd→n1) = gm*v(nc) = 2mA into n1 through 1k.
        let mut ckt = Circuit::new();
        let nc = ckt.node("nc");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", nc, GROUND, Waveform::dc(1.0))
            .unwrap();
        ckt.add_vccs("G1", GROUND, n1, nc, GROUND, 2e-3).unwrap();
        ckt.add_resistor("R1", n1, GROUND, 1e3).unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        let u = sys.source_values_at(0.0);
        let x = lu_solve(&sys.g, &sys.b_times(&u)).unwrap();
        let i1 = sys.unknown_of_node(n1).unwrap();
        assert!((x[i1] - 2.0).abs() < 1e-12, "v(n1) = {}", x[i1]);
    }

    #[test]
    fn vcvs_stamp() {
        let mut ckt = Circuit::new();
        let nc = ckt.node("nc");
        let no = ckt.node("no");
        ckt.add_vsource("V1", nc, GROUND, Waveform::dc(1.5))
            .unwrap();
        ckt.add_vcvs("E1", no, GROUND, nc, GROUND, -4.0).unwrap();
        ckt.add_resistor("R1", no, GROUND, 1e3).unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        let u = sys.source_values_at(0.0);
        let x = lu_solve(&sys.g, &sys.b_times(&u)).unwrap();
        let io = sys.unknown_of_node(no).unwrap();
        assert!((x[io] + 6.0).abs() < 1e-12);
        assert!(sys.branch_of("E1").is_some());
    }

    #[test]
    fn cccs_and_ccvs_stamps() {
        // V1 drives 1mA through R1 (i through V1 = -1mA by passive sign);
        // F1 mirrors that current (gain 2) into R2.
        let mut ckt = Circuit::new();
        let na = ckt.node("na");
        let nb = ckt.node("nb");
        let nh = ckt.node("nh");
        ckt.add_vsource("V1", na, GROUND, Waveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", na, GROUND, 1e3).unwrap();
        ckt.add_cccs("F1", GROUND, nb, "V1", 2.0).unwrap();
        ckt.add_resistor("R2", nb, GROUND, 1e3).unwrap();
        ckt.add_ccvs("H1", nh, GROUND, "V1", 500.0).unwrap();
        ckt.add_resistor("R3", nh, GROUND, 1e3).unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        let u = sys.source_values_at(0.0);
        let x = lu_solve(&sys.g, &sys.b_times(&u)).unwrap();
        // i(V1) = -1 mA (current into + terminal from the source's view).
        let iv = sys.branch_of("V1").unwrap();
        assert!((x[iv] + 1e-3).abs() < 1e-12);
        // F1: i(gnd→nb) = 2·i(V1) = -2 mA → v(nb) = -2 V.
        let ib = sys.unknown_of_node(nb).unwrap();
        assert!((x[ib] + 2.0).abs() < 1e-9, "v(nb) = {}", x[ib]);
        // H1: v(nh) = 500·i(V1) = -0.5 V.
        let ih = sys.unknown_of_node(nh).unwrap();
        assert!((x[ih] + 0.5).abs() < 1e-9, "v(nh) = {}", x[ih]);
    }

    #[test]
    fn source_value_helpers() {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n1, GROUND, Waveform::rising_step(0.0, 5.0, 1e-9))
            .unwrap();
        ckt.add_resistor("R1", n1, GROUND, 1.0).unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        assert_eq!(sys.initial_source_values(), vec![0.0]);
        assert_eq!(sys.final_source_values(), vec![5.0]);
        assert_eq!(sys.source_values_at(0.5e-9), vec![2.5]);
    }

    #[test]
    fn build_reusing_is_bitwise_build() {
        let (ckt, _) = divider();
        let fresh = MnaSystem::build(&ckt).unwrap();
        // Recycle a structurally different system's buffers.
        let mut other = Circuit::new();
        let n1 = other.node("n1");
        let n2 = other.node("n2");
        other
            .add_isource("I1", GROUND, n1, Waveform::dc(1e-3))
            .unwrap();
        other.add_resistor("R1", n1, GROUND, 1e3).unwrap();
        other.add_capacitor("C1", n1, n2, 1e-12).unwrap();
        other.add_resistor("R2", n2, GROUND, 2e3).unwrap();
        let donor = MnaSystem::build(&other).unwrap();
        let reused = MnaSystem::build_reusing(&ckt, Some(donor)).unwrap();
        assert_eq!(reused.g, fresh.g);
        assert_eq!(reused.c, fresh.c);
        assert_eq!(reused.b, fresh.b);
        assert_eq!(reused.g_tilde, fresh.g_tilde);
        assert_eq!(reused.c_tilde, fresh.c_tilde);
        assert_eq!(reused.num_unknowns(), fresh.num_unknowns());
        assert_eq!(reused.node_unknown, fresh.node_unknown);
        assert_eq!(reused.branch_of, fresh.branch_of);
        assert_eq!(reused.sources.len(), fresh.sources.len());
        assert_eq!(reused.caps.len(), fresh.caps.len());
    }

    #[test]
    fn floating_node_has_singular_g() {
        // A node reachable only through a capacitor: G is singular — the
        // paper's §3.1 restriction surfaces as NoDcSolution downstream.
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        ckt.add_vsource("V1", n1, GROUND, Waveform::dc(1.0))
            .unwrap();
        ckt.add_capacitor("C1", n1, n2, 1e-12).unwrap();
        let sys = MnaSystem::build(&ckt).unwrap();
        assert!(awe_numeric::Lu::factor(&sys.g).is_err());
    }
}
