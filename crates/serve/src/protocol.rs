//! The wire protocol: newline-delimited JSON requests and typed errors.
//!
//! Every request is one JSON object on one line with a `verb` field and
//! an optional `id` the daemon echoes back verbatim (number or string —
//! the daemon never interprets it). Every response is one JSON object on
//! one line: `{"id":…,"ok":true,"verb":…,…}` on success,
//! `{"id":…,"ok":false,"error":{"code":…,"message":…}}` on failure.
//! Malformed input of any kind — bad JSON, a non-object, an unknown
//! verb, a missing or mistyped field — produces an error response, never
//! a panic or a dropped connection.

use crate::eco::EcoOp;
use crate::json::Json;

/// Machine-readable error class, the `error.code` field of a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The line parsed but was not a usable request object (missing or
    /// mistyped fields, non-object payload, empty op list, …).
    BadRequest,
    /// The `verb` names no protocol operation.
    UnknownVerb,
    /// The named session does not exist.
    NoSuchSession,
    /// `load_design` for a session name already in use.
    DuplicateSession,
    /// The design deck failed to parse or build.
    DeckError,
    /// An ECO op was rejected (no such element, bad value, …); the
    /// session design is unchanged.
    EcoError,
}

impl ErrorCode {
    /// Wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::NoSuchSession => "no_such_session",
            ErrorCode::DuplicateSession => "duplicate_session",
            ErrorCode::DeckError => "deck_error",
            ErrorCode::EcoError => "eco_error",
        }
    }
}

/// A typed protocol error, rendered as the `error` object of a response.
#[derive(Clone, Debug)]
pub struct ServeError {
    /// Error class.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// The net the error is about, when one is identifiable (deck parse
    /// failures and ECO rejections).
    pub net: Option<String>,
    /// The offending deck line, for deck parse failures.
    pub line: Option<usize>,
}

impl ServeError {
    /// An error with no net/line attribution.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServeError {
            code,
            message: message.into(),
            net: None,
            line: None,
        }
    }

    /// Attaches the offending net name.
    pub fn with_net(mut self, net: impl Into<String>) -> Self {
        self.net = Some(net.into());
        self
    }

    /// Attaches the offending deck line.
    pub fn with_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// The `error` object for the response line.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("code", Json::str(self.code.as_str())),
            ("message", Json::str(&self.message)),
        ];
        if let Some(net) = &self.net {
            pairs.push(("net", Json::str(net)));
        }
        if let Some(line) = self.line {
            pairs.push(("line", Json::from(line)));
        }
        Json::obj(pairs)
    }
}

/// Where `load_design` gets its nets.
#[derive(Clone, Debug)]
pub enum DesignSource {
    /// An inline multi-net deck (see `awe_circuit::parse_multi_deck`).
    Deck {
        /// Design name for reports (defaults to the session name).
        name: String,
        /// The deck text (`\n`-separated inside the JSON string).
        deck: String,
    },
    /// `Design::synthetic_chains`: one structure group of identical
    /// topology, per-net value jitter.
    Chains {
        /// Net count.
        nets: usize,
        /// Stages per chain.
        stages: usize,
        /// Jitter seed.
        seed: u64,
    },
    /// `Design::synthetic`: the mixed random RC-tree workload.
    Synthetic {
        /// Net count.
        nets: usize,
        /// Generator seed.
        seed: u64,
    },
}

/// Per-session overrides of the daemon's default batch options.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOpts {
    /// Worker threads for this session's runs (`0` = one per core).
    pub threads: Option<usize>,
    /// Fixed AWE order.
    pub order: Option<usize>,
    /// Automatic order selection with this error target.
    pub auto_target: Option<f64>,
    /// Order ceiling in automatic mode.
    pub max_order: Option<usize>,
    /// Enable the RC-chain reduction pre-pass for this session.
    pub reduce: Option<bool>,
    /// Reduction tolerance override (relative moment-defect budget per pass).
    pub reduce_tol: Option<f64>,
    /// Disable structure-group tape replay for this session (escape
    /// hatch; replay is bit-identical to the scalar path).
    pub no_tape: Option<bool>,
}

/// A parsed request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Create a session: parse/generate the design and run the first full
    /// batch analysis.
    LoadDesign {
        /// New session name.
        session: String,
        /// Design source.
        source: DesignSource,
        /// Batch-option overrides.
        opts: RunOpts,
    },
    /// Apply a sequence of edits atomically (all or none).
    Eco {
        /// Target session.
        session: String,
        /// The edits, applied in order.
        ops: Vec<EcoOp>,
    },
    /// Re-analyze: only nets whose structural hash changed re-solve.
    Analyze {
        /// Target session.
        session: String,
    },
    /// Per-net results of the session's most recent analysis.
    Report {
        /// Target session.
        session: String,
        /// Cap on the number of per-net entries returned.
        limit: Option<usize>,
    },
    /// Cache/dirty-tracking counters for one session, or daemon-wide
    /// request-latency metrics when no session is named.
    Metrics {
        /// Target session (`None` = daemon-wide).
        session: Option<String>,
    },
    /// Dump a flight-recorder snapshot of the live obs recording to a
    /// file (Chrome trace JSON), on demand.
    DumpTrace {
        /// Session to attribute the dump to (tagging only — the
        /// snapshot always covers every lane).
        session: Option<String>,
        /// Output path override (defaults to the daemon's flight
        /// directory).
        path: Option<String>,
    },
    /// Liveness check.
    Ping,
    /// Discard a session (its engine caches go with it).
    Close {
        /// Target session.
        session: String,
    },
    /// Stop the daemon after responding.
    Shutdown,
}

/// Parses one request line. The first element is the echoed `id` (`Null`
/// when the line was too broken to recover one).
pub fn parse_request(line: &str) -> (Json, Result<Request, ServeError>) {
    let value = match crate::json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                Json::Null,
                Err(ServeError::new(ErrorCode::BadJson, e.to_string())),
            )
        }
    };
    let id = value.get("id").cloned().unwrap_or(Json::Null);
    if !matches!(value, Json::Obj(_)) {
        return (
            id,
            Err(ServeError::new(
                ErrorCode::BadRequest,
                "request must be a JSON object",
            )),
        );
    }
    (id, parse_verb(&value))
}

fn parse_verb(obj: &Json) -> Result<Request, ServeError> {
    let verb = match obj.get("verb") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| bad("field `verb` must be a string"))?,
        None => return Err(bad("missing field `verb`")),
    };
    match verb {
        "load_design" => parse_load(obj),
        "eco" => parse_eco(obj),
        "analyze" => Ok(Request::Analyze {
            session: need_str(obj, "session")?,
        }),
        "report" => Ok(Request::Report {
            session: need_str(obj, "session")?,
            limit: opt_usize(obj, "limit")?,
        }),
        "metrics" => Ok(Request::Metrics {
            session: opt_str(obj, "session")?,
        }),
        "dump_trace" => Ok(Request::DumpTrace {
            session: opt_str(obj, "session")?,
            path: opt_str(obj, "path")?,
        }),
        "ping" => Ok(Request::Ping),
        "close" => Ok(Request::Close {
            session: need_str(obj, "session")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServeError::new(
            ErrorCode::UnknownVerb,
            format!("unknown verb `{other}`"),
        )),
    }
}

fn parse_load(obj: &Json) -> Result<Request, ServeError> {
    let session = need_str(obj, "session")?;
    let opts = parse_opts(obj.get("opts"))?;
    let source = if let Some(deck) = obj.get("deck") {
        let deck = deck
            .as_str()
            .ok_or_else(|| bad("field `deck` must be a string"))?
            .to_owned();
        let name = opt_str(obj, "name")?.unwrap_or_else(|| session.clone());
        DesignSource::Deck { name, deck }
    } else if let Some(spec) = obj.get("chains") {
        DesignSource::Chains {
            nets: need_usize(spec, "nets", "chains")?,
            stages: need_usize(spec, "stages", "chains")?,
            seed: opt_u64(spec, "seed", "chains")?.unwrap_or(1),
        }
    } else if let Some(spec) = obj.get("synthetic") {
        DesignSource::Synthetic {
            nets: need_usize(spec, "nets", "synthetic")?,
            seed: opt_u64(spec, "seed", "synthetic")?.unwrap_or(1),
        }
    } else {
        return Err(bad(
            "load_design needs one of `deck`, `chains`, or `synthetic`",
        ));
    };
    Ok(Request::LoadDesign {
        session,
        source,
        opts,
    })
}

fn parse_opts(value: Option<&Json>) -> Result<RunOpts, ServeError> {
    let Some(obj) = value else {
        return Ok(RunOpts::default());
    };
    if !matches!(obj, Json::Obj(_)) {
        return Err(bad("field `opts` must be an object"));
    }
    let auto_target = match obj.get("auto") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|t| *t > 0.0)
                .ok_or_else(|| bad("field `opts.auto` must be a positive number"))?,
        ),
    };
    let reduce = match obj.get("reduce") {
        None => None,
        Some(v) => Some(
            v.as_bool()
                .ok_or_else(|| bad("field `opts.reduce` must be a boolean"))?,
        ),
    };
    let reduce_tol = match obj.get("reduce_tol") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|t| *t >= 0.0)
                .ok_or_else(|| bad("field `opts.reduce_tol` must be a non-negative number"))?,
        ),
    };
    let no_tape = match obj.get("no_tape") {
        None => None,
        Some(v) => Some(
            v.as_bool()
                .ok_or_else(|| bad("field `opts.no_tape` must be a boolean"))?,
        ),
    };
    Ok(RunOpts {
        threads: opt_usize(obj, "threads")?,
        order: opt_usize(obj, "order")?,
        auto_target,
        max_order: opt_usize(obj, "max_order")?,
        reduce,
        reduce_tol,
        no_tape,
    })
}

fn parse_eco(obj: &Json) -> Result<Request, ServeError> {
    let session = need_str(obj, "session")?;
    let ops_json = obj
        .get("ops")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("field `ops` must be an array"))?;
    if ops_json.is_empty() {
        return Err(bad("field `ops` must not be empty"));
    }
    let mut ops = Vec::with_capacity(ops_json.len());
    for (i, op) in ops_json.iter().enumerate() {
        ops.push(parse_op(op).map_err(|e| bad(format!("ops[{i}]: {}", e.message)))?);
    }
    Ok(Request::Eco { session, ops })
}

fn parse_op(obj: &Json) -> Result<EcoOp, ServeError> {
    let kind = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing field `op`"))?;
    let net = need_str(obj, "net")?;
    match kind {
        "add" => Ok(EcoOp::Add {
            net,
            card: need_str(obj, "card")?,
        }),
        "remove" => Ok(EcoOp::Remove {
            net,
            element: need_str(obj, "element")?,
        }),
        "resize" => Ok(EcoOp::Resize {
            net,
            element: need_str(obj, "element")?,
            value: obj
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("field `value` must be a number"))?,
        }),
        "set_source" => Ok(EcoOp::SetSource {
            net,
            element: need_str(obj, "element")?,
            source: need_str(obj, "source")?,
        }),
        other => Err(bad(format!("unknown op `{other}`"))),
    }
}

fn bad(message: impl Into<String>) -> ServeError {
    ServeError::new(ErrorCode::BadRequest, message)
}

fn need_str(obj: &Json, key: &str) -> Result<String, ServeError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| bad(format!("field `{key}` must be a non-empty string")))
}

fn opt_str(obj: &Json, key: &str) -> Result<Option<String>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| bad(format!("field `{key}` must be a string"))),
    }
}

fn opt_usize(obj: &Json, key: &str) -> Result<Option<usize>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| bad(format!("field `{key}` must be a non-negative integer"))),
    }
}

fn need_usize(obj: &Json, key: &str, ctx: &str) -> Result<usize, ServeError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .filter(|&n| n > 0)
        .map(|n| n as usize)
        .ok_or_else(|| bad(format!("field `{ctx}.{key}` must be a positive integer")))
}

fn opt_u64(obj: &Json, key: &str, ctx: &str) -> Result<Option<u64>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            bad(format!(
                "field `{ctx}.{key}` must be a non-negative integer"
            ))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        let (id, req) = parse_request(
            r#"{"id":1,"verb":"load_design","session":"s","chains":{"nets":4,"stages":10,"seed":2}}"#,
        );
        assert_eq!(id, Json::Num(1.0));
        match req.unwrap() {
            Request::LoadDesign {
                session,
                source: DesignSource::Chains { nets, stages, seed },
                ..
            } => {
                assert_eq!(session, "s");
                assert_eq!((nets, stages, seed), (4, 10, 2));
            }
            other => panic!("{other:?}"),
        }
        let (_, req) = parse_request(
            r#"{"verb":"eco","session":"s","ops":[{"op":"resize","net":"n1","element":"R1","value":150}]}"#,
        );
        match req.unwrap() {
            Request::Eco { ops, .. } => assert_eq!(ops.len(), 1),
            other => panic!("{other:?}"),
        }
        for (line, want) in [
            (r#"{"verb":"analyze","session":"s"}"#, "analyze"),
            (r#"{"verb":"report","session":"s","limit":5}"#, "report"),
            (r#"{"verb":"metrics"}"#, "metrics"),
            (r#"{"verb":"dump_trace"}"#, "dump_trace"),
            (
                r#"{"verb":"dump_trace","session":"s","path":"/tmp/t.json"}"#,
                "dump_trace",
            ),
            (r#"{"verb":"ping"}"#, "ping"),
            (r#"{"verb":"close","session":"s"}"#, "close"),
            (r#"{"verb":"shutdown"}"#, "shutdown"),
        ] {
            let (_, req) = parse_request(line);
            assert!(req.is_ok(), "{want}: {req:?}");
        }
    }

    #[test]
    fn no_tape_opt_parses_and_rejects_non_booleans() {
        let (_, req) = parse_request(
            r#"{"verb":"load_design","session":"s","chains":{"nets":2,"stages":5,"seed":1},"opts":{"no_tape":true}}"#,
        );
        match req.unwrap() {
            Request::LoadDesign { opts, .. } => assert_eq!(opts.no_tape, Some(true)),
            other => panic!("{other:?}"),
        }
        let (_, req) = parse_request(
            r#"{"verb":"load_design","session":"s","chains":{"nets":2,"stages":5,"seed":1},"opts":{"no_tape":1}}"#,
        );
        let err = req.unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("no_tape"), "{}", err.message);
    }

    #[test]
    fn typed_errors_carry_codes_and_echo_ids() {
        let (id, req) = parse_request("this is not json");
        assert_eq!(id, Json::Null);
        assert_eq!(req.unwrap_err().code, ErrorCode::BadJson);

        let (id, req) = parse_request(r#"{"id":"abc","verb":"frobnicate"}"#);
        assert_eq!(id, Json::str("abc"));
        assert_eq!(req.unwrap_err().code, ErrorCode::UnknownVerb);

        let (id, req) = parse_request(r#"{"id":7,"verb":"analyze"}"#);
        assert_eq!(id, Json::Num(7.0));
        let err = req.unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("session"), "{}", err.message);

        let (_, req) = parse_request(r#"[1,2,3]"#);
        assert_eq!(req.unwrap_err().code, ErrorCode::BadRequest);

        let (_, req) = parse_request(
            r#"{"verb":"eco","session":"s","ops":[{"op":"resize","net":"n1","element":"R1","value":"wat"}]}"#,
        );
        let err = req.unwrap_err();
        assert!(err.message.contains("ops[0]"), "{}", err.message);

        let (_, req) = parse_request(r#"{"verb":"eco","session":"s","ops":[]}"#);
        assert!(req.unwrap_err().message.contains("empty"));
    }

    #[test]
    fn error_json_includes_attribution() {
        let e = ServeError::new(ErrorCode::DeckError, "boom")
            .with_net("bitline")
            .with_line(12);
        let j = e.to_json();
        assert_eq!(j.get("code").and_then(Json::as_str), Some("deck_error"));
        assert_eq!(j.get("net").and_then(Json::as_str), Some("bitline"));
        assert_eq!(j.get("line").and_then(Json::as_u64), Some(12));
    }
}
