//! `awesim` — command-line AWE timing analysis for SPICE-like decks.
//!
//! ```text
//! awesim analyze <deck> --node <name> [--order N | --auto ERR] [--threshold V]
//! awesim poles   <deck> [--order N]
//! awesim sim     <deck> --node <name> --tstop SECONDS [--samples N]
//! awesim elmore  <deck>
//! awesim check   <deck>
//! awesim export  <deck> --node <name> [--order N] [--pwl N]
//! awesim batch   <deck|--synthetic N> [--threads N] [--order N | --auto ERR]
//!                [--reduce] [--reduce-tol T] [--no-tape] [--seed N] [--repeat K]
//!                [--json] [--no-timings] [--trace FILE] [--metrics FILE]
//! awesim sweep   <deck|--pdn N[xM]> --corners N [--sigma S] [--seed N]
//!                [--taps K] [--strap-pitch P] [--threads N] [--order N]
//!                [--reduce] [--reduce-tol T] [--no-tape]
//!                [--json] [--no-timings] [--trace FILE] [--metrics FILE]
//! awesim verify  [--seed N] [--count N] [--class C] [--threads N]
//!                [--reduce-tol T] [--corpus-dir DIR] [--json] [--no-minimize]
//! awesim serve   [--stdio | --tcp ADDR] [--threads N] [--no-tape]
//!                [--reduce] [--reduce-tol T] [--trace FILE] [--metrics FILE]
//!                [--metrics-addr ADDR] [--flight-dir DIR] [--no-flight]
//!                [--flight-latency-ms N]
//! awesim stats   --tcp ADDR [--watch SECS] [--json]
//! ```
//!
//! The deck format is documented in `awesim::circuit::parse_deck`; `batch`
//! accepts the multi-net variant (`awesim::circuit::parse_multi_deck`).
//! `sweep` runs the Monte-Carlo corner engine from `awesim::batch::sweep`
//! over a multi-net deck or a generated power-grid mesh (`--pdn`),
//! reporting per-observation-node delay distributions across corners.
//! `verify` runs the differential-oracle fuzz campaign from
//! `awesim::verify` and exits nonzero if any case fails its oracles.
//! `serve` runs the persistent-session analysis daemon from
//! `awesim::serve`: newline-delimited JSON requests on stdin (or a TCP
//! socket with `--tcp`), one JSON response per line, until a `shutdown`
//! request or EOF. The daemon records continuously: `--metrics-addr`
//! exposes a Prometheus text endpoint, and anomalous requests (health
//! warnings, error responses, latency over `--flight-latency-ms`) dump
//! flight-recorder traces into `--flight-dir` unless `--no-flight`.
//! `stats` is the matching client: it queries a daemon's `metrics` verb
//! over TCP and renders a one-shot (or `--watch`) dashboard.

use std::fs;
use std::process::ExitCode;

use awesim::batch::{json_report, text_report, BatchEngine, BatchOptions, Design};
use awesim::circuit::{analyze as classify, parse_deck, Circuit, NodeId};
use awesim::core::elmore::elmore_delays;
use awesim::core::{AweEngine, AweOptions};
use awesim::sim::{exact_poles, simulate, TransientOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  awesim analyze <deck> --node <name> [--order N | --auto ERR] [--threshold V]
  awesim poles   <deck> [--max N]
  awesim sim     <deck> --node <name> --tstop SECONDS [--samples N]
  awesim elmore  <deck>
  awesim check   <deck>
  awesim export  <deck> --node <name> [--order N] [--pwl N]
  awesim batch   <deck|--synthetic N> [--threads N] [--order N | --auto ERR]
                 [--reduce] [--reduce-tol T] [--no-tape] [--seed N] [--repeat K]
                 [--json] [--no-timings] [--trace FILE] [--metrics FILE]
  awesim sweep   <deck|--pdn N[xM]> --corners N [--sigma S] [--seed N]
                 [--taps K] [--strap-pitch P] [--threads N] [--order N]
                 [--reduce] [--reduce-tol T] [--no-tape]
                 [--json] [--no-timings] [--trace FILE] [--metrics FILE]
  awesim verify  [--seed N] [--count N] [--class C] [--threads N]
                 [--reduce-tol T] [--corpus-dir DIR] [--json] [--no-minimize]
  awesim serve   [--stdio | --tcp ADDR] [--threads N] [--no-tape]
                 [--reduce] [--reduce-tol T] [--trace FILE] [--metrics FILE]
                 [--metrics-addr ADDR] [--flight-dir DIR] [--no-flight]
                 [--flight-latency-ms N]
  awesim stats   --tcp ADDR [--watch SECS] [--json]";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    if cmd == "batch" {
        // Full-design mode: its input is a multi-net deck or a synthetic
        // workload, not the single-net deck the other subcommands share.
        // A design member that fails to parse is an input problem, not a
        // usage error: cmd_batch reports the offending deck itself and
        // returns a nonzero exit without the usage dump.
        return cmd_batch(&args[1..]);
    }
    if cmd == "sweep" {
        // Monte-Carlo corner mode: a multi-net deck or a generated PDN
        // mesh swept across value-only process corners.
        return cmd_sweep(&args[1..]);
    }
    if cmd == "verify" {
        // Fuzz-campaign mode: generates its own circuits; a failing
        // campaign is a nonzero exit, not a usage error.
        return cmd_verify(&args[1..]);
    }
    if cmd == "serve" {
        // Daemon mode: reads requests, not a deck.
        return cmd_serve(&args[1..]);
    }
    if cmd == "stats" {
        // Client mode: queries a running daemon over TCP.
        return cmd_stats(&args[1..]);
    }
    let deck_path = args.get(1).ok_or("missing deck path")?;
    let deck =
        fs::read_to_string(deck_path).map_err(|e| format!("cannot read {deck_path}: {e}"))?;
    let circuit = parse_deck(&deck).map_err(|e| e.to_string())?;

    match cmd.as_str() {
        "analyze" => cmd_analyze(&circuit, &args[2..]),
        "poles" => cmd_poles(&circuit, &args[2..]),
        "sim" => cmd_sim(&circuit, &args[2..]),
        "elmore" => cmd_elmore(&circuit),
        "check" => cmd_check(&circuit),
        "export" => cmd_export(&circuit, &args[2..]),
        other => Err(format!("unknown subcommand `{other}`")),
    }
    .map(|()| ExitCode::SUCCESS)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn node_arg(circuit: &Circuit, args: &[String]) -> Result<NodeId, String> {
    let name = flag(args, "--node").ok_or("missing --node <name>")?;
    circuit
        .find_node(&name)
        .ok_or_else(|| format!("node `{name}` not found in the deck"))
}

fn cmd_analyze(circuit: &Circuit, args: &[String]) -> Result<(), String> {
    let node = node_arg(circuit, args)?;
    let engine = AweEngine::new(circuit).map_err(|e| e.to_string())?;

    let approx = if let Some(target) = flag(args, "--auto") {
        let target: f64 = target.parse().map_err(|_| "bad --auto value")?;
        let (a, trail) = engine
            .approximate_auto(node, target, 8, AweOptions::default())
            .map_err(|e| e.to_string())?;
        println!("auto order selection (target {:.2} %):", target * 100.0);
        for r in &trail {
            println!(
                "  q={}: est. error {}, stable={}",
                r.order,
                r.error
                    .map_or("n/a".to_owned(), |e| format!("{:.3} %", e * 100.0)),
                r.stable
            );
        }
        a
    } else {
        let order: usize = flag(args, "--order")
            .map(|s| s.parse().map_err(|_| "bad --order value"))
            .transpose()?
            .unwrap_or(2);
        engine.approximate(node, order).map_err(|e| e.to_string())?
    };

    println!("order: {}", approx.order);
    println!("stable: {}", approx.stable);
    println!("initial value: {:.6} V", approx.initial_value());
    println!("final value:   {:.6} V", approx.final_value());
    if let Some(e) = approx.error_estimate {
        println!("error estimate: {:.3} %", e * 100.0);
    }
    println!("poles:");
    for p in approx.poles() {
        if p.im == 0.0 {
            println!("  {:.6e} rad/s", p.re);
        } else {
            println!("  {:.6e} {:+.6e}j rad/s", p.re, p.im);
        }
    }
    if let Some(d) = approx.delay_50() {
        println!("50% delay: {:.6e} s", d);
    }
    if let Some(thr) = flag(args, "--threshold") {
        let level: f64 = thr.parse().map_err(|_| "bad --threshold value")?;
        match approx.delay_to_threshold(level) {
            Some(t) => println!("{level} V threshold: {t:.6e} s"),
            None => println!("{level} V threshold: never crossed"),
        }
    }
    Ok(())
}

fn cmd_poles(circuit: &Circuit, args: &[String]) -> Result<(), String> {
    let poles = exact_poles(circuit).map_err(|e| e.to_string())?;
    let max: usize = flag(args, "--max")
        .map(|s| s.parse().map_err(|_| "bad --max value"))
        .transpose()?
        .unwrap_or(poles.len());
    println!("{} natural frequencies (dominant first):", poles.len());
    for p in poles.iter().take(max) {
        if p.im == 0.0 {
            println!("  {:.6e} rad/s", p.re);
        } else {
            println!("  {:.6e} {:+.6e}j rad/s", p.re, p.im);
        }
    }
    Ok(())
}

fn cmd_sim(circuit: &Circuit, args: &[String]) -> Result<(), String> {
    let node = node_arg(circuit, args)?;
    let t_stop: f64 = flag(args, "--tstop")
        .ok_or("missing --tstop SECONDS")?
        .parse()
        .map_err(|_| "bad --tstop value")?;
    let samples: usize = flag(args, "--samples")
        .map(|s| s.parse().map_err(|_| "bad --samples value"))
        .transpose()?
        .unwrap_or(20);

    let result = simulate(circuit, TransientOptions::new(t_stop)).map_err(|e| e.to_string())?;
    println!("{:>16} {:>12}", "t [s]", "v [V]");
    for i in 0..=samples {
        let t = t_stop * i as f64 / samples as f64;
        println!("{t:>16.6e} {:>12.6}", result.value_at(node, t));
    }
    if let Some(d) = result.delay_50(node) {
        println!("50% delay: {d:.6e} s");
    }
    Ok(())
}

fn cmd_elmore(circuit: &Circuit) -> Result<(), String> {
    let delays = elmore_delays(circuit).map_err(|e| e.to_string())?;
    println!("{:>10} {:>16}", "node", "T_D [s]");
    for (node, &t_d) in delays.iter().enumerate().skip(1) {
        if t_d > 0.0 {
            println!("{:>10} {:>16.6e}", circuit.node_name(node), t_d);
        }
    }
    Ok(())
}

fn cmd_export(circuit: &Circuit, args: &[String]) -> Result<(), String> {
    use awesim::core::macromodel::{to_pole_residue_text, to_pwl};
    let node = node_arg(circuit, args)?;
    let order: usize = flag(args, "--order")
        .map(|s| s.parse().map_err(|_| "bad --order value"))
        .transpose()?
        .unwrap_or(2);
    let engine = AweEngine::new(circuit).map_err(|e| e.to_string())?;
    let approx = engine.approximate(node, order).map_err(|e| e.to_string())?;
    if let Some(n) = flag(args, "--pwl") {
        let n: usize = n.parse().map_err(|_| "bad --pwl value")?;
        if n < 2 {
            return Err("--pwl needs at least 2 samples".into());
        }
        // SPICE-compatible PWL list.
        print!("PWL(");
        for (i, (t, v)) in to_pwl(&approx, n).iter().enumerate() {
            if i > 0 {
                print!(" ");
            }
            print!("{t:.6e} {v:.6e}");
        }
        println!(")");
    } else {
        print!("{}", to_pole_residue_text(&approx));
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<ExitCode, String> {
    let design = if let Some(n) = flag(args, "--synthetic") {
        let n: usize = n.parse().map_err(|_| "bad --synthetic value")?;
        let seed: u64 = flag(args, "--seed")
            .map(|s| s.parse().map_err(|_| "bad --seed value"))
            .transpose()?
            .unwrap_or(42);
        Design::synthetic(n, seed)
    } else {
        let path = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .ok_or("missing deck path (or --synthetic N)")?;
        let deck = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let stem = std::path::Path::new(path)
            .file_stem()
            .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
        match Design::from_deck(stem, &deck) {
            Ok(d) => d,
            // Name the offending deck so a scripted caller knows which
            // input to fix; this is a data error, not a usage error.
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return Ok(ExitCode::FAILURE);
            }
        }
    };

    let mut opts = BatchOptions::default();
    if let Some(t) = flag(args, "--threads") {
        opts.threads = t.parse().map_err(|_| "bad --threads value")?;
    }
    if let Some(o) = flag(args, "--order") {
        opts.order = o.parse().map_err(|_| "bad --order value")?;
    }
    if let Some(target) = flag(args, "--auto") {
        opts.auto_target = Some(target.parse().map_err(|_| "bad --auto value")?);
    }
    if args.iter().any(|a| a == "--reduce") {
        opts.reduce.enabled = true;
    }
    if let Some(t) = flag(args, "--reduce-tol") {
        opts.reduce.enabled = true;
        opts.reduce.tolerance = t.parse().map_err(|_| "bad --reduce-tol value")?;
    }
    if args.iter().any(|a| a == "--no-tape") {
        // Escape hatch: solve every net on the scalar path instead of
        // replaying structure-group tapes (results are bit-identical).
        opts.use_tape = false;
    }
    let repeat: usize = flag(args, "--repeat")
        .map(|s| s.parse().map_err(|_| "bad --repeat value"))
        .transpose()?
        .unwrap_or(1)
        .max(1);
    let json = args.iter().any(|a| a == "--json");
    let timings = !args.iter().any(|a| a == "--no-timings");
    let trace_path = flag(args, "--trace");
    let metrics_path = flag(args, "--metrics");
    let recording = if trace_path.is_some() || metrics_path.is_some() {
        Some(
            awesim::obs::Recording::start()
                .ok_or("an observability recording is already active")?,
        )
    } else {
        None
    };

    let engine = BatchEngine::new();
    for pass in 1..=repeat {
        // Repeat passes share the engine's cache: with an unchanged
        // design, pass 2+ reports 100 % cache hits and zero AWE solves.
        let run = engine.run(&design, &opts);
        if repeat > 1 && !json {
            println!("--- pass {pass}/{repeat} ---");
        }
        if json {
            print!("{}", json_report(&run, timings));
        } else {
            print!("{}", text_report(&run, timings));
        }
    }

    if let Some(rec) = recording {
        let profile = rec.finish();
        if let Some(p) = &trace_path {
            fs::write(p, profile.chrome_trace()).map_err(|e| format!("cannot write {p}: {e}"))?;
            if !json {
                println!("wrote trace {p}");
            }
        }
        if let Some(p) = &metrics_path {
            fs::write(p, profile.metrics_json()).map_err(|e| format!("cannot write {p}: {e}"))?;
            if !json {
                println!("wrote metrics {p}");
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_sweep(args: &[String]) -> Result<ExitCode, String> {
    use awesim::batch::{pdn_design, sweep, sweep_json_report, sweep_text_report, CornerSpec};
    use awesim::circuit::pdn::PdnSpec;

    let design = if let Some(dims) = flag(args, "--pdn") {
        // `--pdn N` (square) or `--pdn NXxNY`.
        let (nx, ny) = match dims.split_once('x') {
            Some((a, b)) => (
                a.parse().map_err(|_| "bad --pdn value")?,
                b.parse().map_err(|_| "bad --pdn value")?,
            ),
            None => {
                let n: usize = dims.parse().map_err(|_| "bad --pdn value")?;
                (n, n)
            }
        };
        let mut spec = PdnSpec {
            nx,
            ny,
            ..PdnSpec::default()
        };
        if let Some(t) = flag(args, "--taps") {
            spec.taps = t.parse().map_err(|_| "bad --taps value")?;
        }
        if let Some(p) = flag(args, "--strap-pitch") {
            spec.strap_pitch = p.parse().map_err(|_| "bad --strap-pitch value")?;
        }
        pdn_design(format!("pdn-{nx}x{ny}"), &spec)
    } else {
        let path = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .ok_or("missing deck path (or --pdn N[xM])")?;
        let deck = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let stem = std::path::Path::new(path)
            .file_stem()
            .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
        match Design::from_deck(stem, &deck) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return Ok(ExitCode::FAILURE);
            }
        }
    };

    let spec = CornerSpec {
        corners: flag(args, "--corners")
            .ok_or("missing --corners N")?
            .parse()
            .map_err(|_| "bad --corners value")?,
        sigma: flag(args, "--sigma")
            .map(|s| s.parse().map_err(|_| "bad --sigma value"))
            .transpose()?
            .unwrap_or(0.1),
        seed: flag(args, "--seed")
            .map(|s| s.parse().map_err(|_| "bad --seed value"))
            .transpose()?
            .unwrap_or(42),
    };

    let mut opts = BatchOptions::default();
    if let Some(t) = flag(args, "--threads") {
        opts.threads = t.parse().map_err(|_| "bad --threads value")?;
    }
    if let Some(o) = flag(args, "--order") {
        opts.order = o.parse().map_err(|_| "bad --order value")?;
    }
    if args.iter().any(|a| a == "--reduce") {
        opts.reduce.enabled = true;
    }
    if let Some(t) = flag(args, "--reduce-tol") {
        opts.reduce.enabled = true;
        opts.reduce.tolerance = t.parse().map_err(|_| "bad --reduce-tol value")?;
    }
    if args.iter().any(|a| a == "--no-tape") {
        opts.use_tape = false;
    }
    let json = args.iter().any(|a| a == "--json");
    let timings = !args.iter().any(|a| a == "--no-timings");
    let trace_path = flag(args, "--trace");
    let metrics_path = flag(args, "--metrics");
    let recording = if trace_path.is_some() || metrics_path.is_some() {
        Some(
            awesim::obs::Recording::start()
                .ok_or("an observability recording is already active")?,
        )
    } else {
        None
    };

    let engine = BatchEngine::new();
    let run = sweep(&engine, &design, &spec, &opts);
    if json {
        print!("{}", sweep_json_report(&run, timings));
    } else {
        print!("{}", sweep_text_report(&run, timings));
    }

    if let Some(rec) = recording {
        let profile = rec.finish();
        if let Some(p) = &trace_path {
            fs::write(p, profile.chrome_trace()).map_err(|e| format!("cannot write {p}: {e}"))?;
            if !json {
                println!("wrote trace {p}");
            }
        }
        if let Some(p) = &metrics_path {
            fs::write(p, profile.metrics_json()).map_err(|e| format!("cannot write {p}: {e}"))?;
            if !json {
                println!("wrote metrics {p}");
            }
        }
    }
    // A sweep whose every corner was rejected at the boundary (or whose
    // members all failed analysis) is an unusable result: exit nonzero
    // so scripted callers notice.
    let usable = run.nodes.iter().any(|n| n.samples > 0);
    Ok(if usable || spec.corners == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    use awesim::verify::{
        json_report as verify_json, run_campaign, text_report as verify_text, CampaignOptions,
        TopologyClass,
    };

    let mut opts = CampaignOptions::default();
    if let Some(s) = flag(args, "--seed") {
        opts.master_seed = s.parse().map_err(|_| "bad --seed value")?;
    }
    if let Some(c) = flag(args, "--count") {
        opts.count = c.parse().map_err(|_| "bad --count value")?;
    }
    if let Some(c) = flag(args, "--class") {
        let class: TopologyClass = c.parse()?;
        opts.class = Some(class);
    }
    if let Some(t) = flag(args, "--threads") {
        opts.threads = t.parse().map_err(|_| "bad --threads value")?;
    }
    if args.iter().any(|a| a == "--no-minimize") {
        opts.minimize_failures = false;
    }
    if let Some(t) = flag(args, "--reduce-tol") {
        opts.reduce_tolerance = t.parse().map_err(|_| "bad --reduce-tol value")?;
    }
    let json = args.iter().any(|a| a == "--json");

    let result = run_campaign(&opts);
    if json {
        print!("{}", verify_json(&result));
    } else {
        print!("{}", verify_text(&result));
    }
    if let Some(dir) = flag(args, "--corpus-dir") {
        let dir = std::path::Path::new(&dir);
        fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        for f in &result.failures {
            let path = dir.join(format!("case-{}-{}.sp", f.index, f.oracle));
            fs::write(&path, &f.deck)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            if !json {
                println!("wrote {}", path.display());
            }
        }
    }
    Ok(if result.failed_cases() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    use awesim::serve::{serve_lines, serve_metrics_endpoint, serve_tcp, ServeOptions, ServeState};

    let mut options = ServeOptions::default();
    if let Some(t) = flag(args, "--threads") {
        options.defaults.threads = t.parse().map_err(|_| "bad --threads value")?;
    }
    if args.iter().any(|a| a == "--reduce") {
        options.defaults.reduce.enabled = true;
    }
    if let Some(t) = flag(args, "--reduce-tol") {
        options.defaults.reduce.enabled = true;
        options.defaults.reduce.tolerance = t.parse().map_err(|_| "bad --reduce-tol value")?;
    }
    if args.iter().any(|a| a == "--no-tape") {
        options.defaults.use_tape = false;
    }
    options.flight.enabled = !args.iter().any(|a| a == "--no-flight");
    if let Some(dir) = flag(args, "--flight-dir") {
        fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        options.flight.dir = dir.into();
    }
    if let Some(ms) = flag(args, "--flight-latency-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --flight-latency-ms value")?;
        options.flight.latency_threshold_us = Some(ms.saturating_mul(1000));
    }
    let tcp_addr = flag(args, "--tcp");
    if tcp_addr.is_none() && args.iter().any(|a| a == "--tcp") {
        return Err("--tcp needs an address (e.g. 127.0.0.1:9300)".into());
    }
    let trace_path = flag(args, "--trace");
    let metrics_path = flag(args, "--metrics");
    // The daemon records continuously: the bounded lanes double as the
    // flight recorder and feed the live occupancy/drop gauges, whether
    // or not a `--trace`/`--metrics` file is requested at exit.
    let recording =
        awesim::obs::Recording::start().ok_or("an observability recording is already active")?;

    let state = std::sync::Arc::new(ServeState::new(options));
    if let Some(addr) = flag(args, "--metrics-addr") {
        let listener = std::net::TcpListener::bind(&addr)
            .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
        eprintln!(
            "awesim serve: metrics on http://{}/metrics",
            listener.local_addr().map_err(|e| e.to_string())?
        );
        let endpoint_state = std::sync::Arc::clone(&state);
        std::thread::spawn(move || {
            let _ = serve_metrics_endpoint(endpoint_state, listener);
        });
    } else if args.iter().any(|a| a == "--metrics-addr") {
        return Err("--metrics-addr needs an address (e.g. 127.0.0.1:9310)".into());
    }
    match tcp_addr {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            eprintln!(
                "awesim serve: listening on {}",
                listener.local_addr().map_err(|e| e.to_string())?
            );
            serve_tcp(std::sync::Arc::clone(&state), listener).map_err(|e| e.to_string())?;
        }
        None => {
            // `--stdio` is the default; accept the explicit flag too.
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_lines(&state, stdin.lock(), stdout.lock()).map_err(|e| e.to_string())?;
        }
    }

    let profile = recording.finish();
    if let Some(p) = &trace_path {
        fs::write(p, profile.chrome_trace()).map_err(|e| format!("cannot write {p}: {e}"))?;
        eprintln!("wrote trace {p}");
    }
    if let Some(p) = &metrics_path {
        fs::write(p, profile.metrics_json()).map_err(|e| format!("cannot write {p}: {e}"))?;
        eprintln!("wrote metrics {p}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    use std::io::{BufRead, BufReader, Write};

    let addr = flag(args, "--tcp").ok_or("missing --tcp ADDR (the daemon's protocol address)")?;
    let json = args.iter().any(|a| a == "--json");
    let watch: Option<u64> = flag(args, "--watch")
        .map(|s| s.parse().map_err(|_| "bad --watch value"))
        .transpose()?;

    // One connection per poll keeps the client stateless: a daemon
    // restart between polls just becomes the next iteration's output.
    let poll = || -> Result<String, String> {
        let mut stream = std::net::TcpStream::connect(&addr)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .write_all(b"{\"verb\":\"metrics\"}\n")
            .map_err(|e| e.to_string())?;
        let mut line = String::new();
        BufReader::new(&stream)
            .read_line(&mut line)
            .map_err(|e| e.to_string())?;
        let reply = awesim::serve::json::parse(line.trim())
            .map_err(|e| format!("bad metrics reply: {e}"))?;
        if reply.get("ok").and_then(awesim::serve::Json::as_bool) != Some(true) {
            return Err(format!("daemon refused metrics request: {}", line.trim()));
        }
        Ok(if json {
            format!("{}\n", line.trim())
        } else {
            awesim::serve::telemetry::render_stats(&reply)
        })
    };

    match watch {
        None => print!("{}", poll()?),
        Some(secs) => loop {
            // Clear the screen between refreshes, dashboard-style.
            print!("\x1b[2J\x1b[H{}", poll()?);
            std::io::stdout().flush().map_err(|e| e.to_string())?;
            std::thread::sleep(std::time::Duration::from_secs(secs.max(1)));
        },
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(circuit: &Circuit) -> Result<(), String> {
    let report = classify(circuit);
    println!("nodes: {}", circuit.num_nodes() - 1);
    println!("elements: {}", circuit.elements().len());
    println!("states (C + L): {}", circuit.num_states());
    println!("is RC tree: {}", report.is_rc_tree());
    println!("is RC mesh: {}", report.is_rc_mesh());
    println!(
        "explicit steady state: {}",
        report.has_explicit_steady_state()
    );
    println!("inductors: {}", report.has_inductors);
    println!("floating capacitors: {}", report.has_floating_capacitors);
    println!("grounded resistors: {}", report.has_grounded_resistors);
    println!("resistor loops: {}", report.has_resistor_loops);
    println!("controlled sources: {}", report.has_controlled_sources);
    println!("initial conditions: {}", report.has_initial_conditions);
    Ok(())
}
