//! Macromodel export: carry a reduced AWE model out of the analyzer.
//!
//! The practical payoff of AWE is that the reduced `q`-pole model is a
//! *reusable artifact*: a timing analyzer computes it once per net and
//! evaluates it everywhere (thresholds, slew rates, noise checks) without
//! ever revisiting the circuit. This module serializes an
//! [`AweApproximation`] in two interchange forms:
//!
//! * [`to_pole_residue_text`] — a human/tool-readable pole-residue listing
//!   (one block per superposition piece), round-trippable by
//!   [`parse_pole_residue_text`];
//! * [`to_pwl`] — a piecewise-linear waveform sample for consumers that
//!   only speak tabulated data (e.g. a SPICE `PWL()` source, closing the
//!   loop back into the circuit world).

use awe_numeric::Complex;

use crate::error::AweError;
use crate::response::{AweApproximation, ResponsePiece};
use crate::terms::{ExpSum, ExpTerm};

/// Serializes the approximation as a pole-residue macromodel text.
///
/// Format (whitespace-separated, `#` comments):
///
/// ```text
/// awe-macromodel v1
/// baseline <value>
/// piece <onset> <a> <b>
/// term <re(p)> <im(p)> <re(k)> <im(k)> <power>
/// …
/// end
/// ```
pub fn to_pole_residue_text(approx: &AweApproximation) -> String {
    let mut out = String::from("awe-macromodel v1\n");
    out.push_str(&format!(
        "# order {} stable {}\n",
        approx.order, approx.stable
    ));
    out.push_str(&format!("baseline {:.17e}\n", approx.baseline));
    for piece in &approx.pieces {
        out.push_str(&format!(
            "piece {:.17e} {:.17e} {:.17e}\n",
            piece.onset, piece.a, piece.b
        ));
        for t in piece.transient.terms() {
            out.push_str(&format!(
                "term {:.17e} {:.17e} {:.17e} {:.17e} {}\n",
                t.pole.re, t.pole.im, t.coeff.re, t.coeff.im, t.power
            ));
        }
    }
    out.push_str("end\n");
    out
}

/// Parses a macromodel previously written by [`to_pole_residue_text`].
///
/// # Errors
///
/// [`AweError::ZeroResponse`] stands in for any malformed input (the
/// macromodel format carries no richer error channel; the message is in
/// the `Err` variant choice only). Prefer structured storage for anything
/// beyond tooling interchange.
pub fn parse_pole_residue_text(text: &str) -> Result<AweApproximation, AweError> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    if lines.next() != Some("awe-macromodel v1") {
        return Err(AweError::ZeroResponse);
    }
    let mut baseline = 0.0f64;
    let mut pieces: Vec<ResponsePiece> = Vec::new();
    let mut current: Option<(f64, f64, f64, Vec<ExpTerm>)> = None;
    let finish = |cur: &mut Option<(f64, f64, f64, Vec<ExpTerm>)>,
                  pieces: &mut Vec<ResponsePiece>| {
        if let Some((onset, a, b, terms)) = cur.take() {
            pieces.push(ResponsePiece {
                onset,
                a,
                b,
                transient: ExpSum::new(terms),
            });
        }
    };
    for line in lines {
        if line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("baseline") => {
                baseline = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(AweError::ZeroResponse)?;
            }
            Some("piece") => {
                finish(&mut current, &mut pieces);
                let mut f = || -> Result<f64, AweError> {
                    tok.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(AweError::ZeroResponse)
                };
                let onset = f()?;
                let a = f()?;
                let b = f()?;
                current = Some((onset, a, b, Vec::new()));
            }
            Some("term") => {
                let vals: Vec<f64> = tok
                    .by_ref()
                    .take(4)
                    .map(|s| s.parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| AweError::ZeroResponse)?;
                if vals.len() != 4 {
                    return Err(AweError::ZeroResponse);
                }
                let power: usize = tok
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(AweError::ZeroResponse)?;
                let (_, _, _, terms) = current.as_mut().ok_or(AweError::ZeroResponse)?;
                terms.push(ExpTerm {
                    pole: Complex::new(vals[0], vals[1]),
                    coeff: Complex::new(vals[2], vals[3]),
                    power,
                });
            }
            Some("end") => {
                finish(&mut current, &mut pieces);
            }
            _ => return Err(AweError::ZeroResponse),
        }
    }
    finish(&mut current, &mut pieces);
    let stable = pieces.iter().all(|p| p.transient.is_stable());
    let order = pieces
        .iter()
        .map(|p| p.transient.terms().len())
        .max()
        .unwrap_or(0);
    Ok(AweApproximation {
        order,
        baseline,
        pieces,
        error_estimate: None,
        condition: f64::NAN,
        stable,
        discarded: 0,
        moment_tail: None,
    })
}

/// Samples the approximation into `(t, v)` pairs suitable for a SPICE
/// `PWL()` source or any tabulated consumer, from `t = 0` to the settling
/// horizon.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn to_pwl(approx: &AweApproximation, n: usize) -> Vec<(f64, f64)> {
    approx.sample(0.0, approx.horizon(), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AweEngine;
    use awe_circuit::papers::fig4;
    use awe_circuit::Waveform;

    fn model() -> AweApproximation {
        let p = fig4(Waveform::rising_step(0.0, 5.0, 1e-3));
        let engine = AweEngine::new(&p.circuit).unwrap();
        engine.approximate(p.output, 2).unwrap()
    }

    #[test]
    fn text_round_trip_preserves_waveform() {
        let approx = model();
        let text = to_pole_residue_text(&approx);
        assert!(text.starts_with("awe-macromodel v1"));
        let re = parse_pole_residue_text(&text).unwrap();
        assert_eq!(re.pieces.len(), approx.pieces.len());
        for i in 0..40 {
            let t = i as f64 * 2e-4;
            assert!(
                (re.eval(t) - approx.eval(t)).abs() < 1e-12,
                "t={t}: {} vs {}",
                re.eval(t),
                approx.eval(t)
            );
        }
        assert_eq!(re.stable, approx.stable);
    }

    #[test]
    fn pwl_export_covers_transition() {
        let approx = model();
        let pwl = to_pwl(&approx, 100);
        assert_eq!(pwl.len(), 100);
        assert_eq!(pwl[0].0, 0.0);
        // Ends settled near the final value.
        let last = pwl.last().unwrap();
        assert!((last.1 - approx.final_value()).abs() < 0.05);
        // Times strictly increasing.
        assert!(pwl.windows(2).all(|w| w[1].0 > w[0].0));
    }

    #[test]
    fn pwl_feeds_back_into_a_circuit() {
        // Close the loop: export the reduced model as a PWL source and
        // drive a follow-on stage with it.
        use awe_circuit::{Circuit, Waveform, GROUND};
        let approx = model();
        let pwl = to_pwl(&approx, 50);
        let mut ckt = Circuit::new();
        let n_in = ckt.node("in");
        let n1 = ckt.node("n1");
        ckt.add_vsource("V1", n_in, GROUND, Waveform::pwl(pwl))
            .unwrap();
        ckt.add_resistor("R1", n_in, n1, 100.0).unwrap();
        ckt.add_capacitor("C1", n1, GROUND, 1e-12).unwrap();
        let engine = AweEngine::new(&ckt).unwrap();
        let next = engine.approximate(n1, 2).unwrap();
        assert!((next.final_value() - approx.final_value()).abs() < 0.05);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(parse_pole_residue_text("").is_err());
        assert!(parse_pole_residue_text("bogus header").is_err());
        assert!(parse_pole_residue_text("awe-macromodel v1\nbaseline nope").is_err());
        assert!(parse_pole_residue_text("awe-macromodel v1\nterm 1 2 3 4 0").is_err());
        assert!(parse_pole_residue_text("awe-macromodel v1\npiece 0 0").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "awe-macromodel v1\n# comment\n\nbaseline 1.5\nend\n";
        let m = parse_pole_residue_text(text).unwrap();
        assert_eq!(m.baseline, 1.5);
        assert_eq!(m.eval(10.0), 1.5);
    }
}
