//! # awe-mna
//!
//! Modified nodal analysis substrate for the AWEsim workspace: descriptor
//! system assembly (`G·x + C·ẋ = B·u`), DC operating points, and the
//! recursive moment generation of the paper's §3.2 — one LU factorization
//! of `G`, then one resubstitution per moment.
//!
//! The excitation handling follows the paper's superposition strategy
//! (§4.3): arbitrary piecewise-linear inputs and nonequilibrium initial
//! conditions decompose into independent step / ramp / initial-condition
//! pieces, each with its own moment sequence ([`MomentEngine::decompose`]).
//!
//! ## Example
//!
//! ```
//! use awe_circuit::{Circuit, Waveform, GROUND};
//! use awe_mna::{MnaSystem, MomentEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ckt = Circuit::new();
//! let n_in = ckt.node("in");
//! let n1 = ckt.node("n1");
//! ckt.add_vsource("V1", n_in, GROUND, Waveform::step(0.0, 5.0))?;
//! ckt.add_resistor("R1", n_in, n1, 1e3)?;
//! ckt.add_capacitor("C1", n1, GROUND, 1e-9)?;
//!
//! let sys = MnaSystem::build(&ckt)?;
//! let engine = MomentEngine::new(&sys)?;
//! let dec = engine.decompose(4)?; // moments m_{-1}..m_2
//! let i1 = sys.unknown_of_node(n1).expect("n1 is an unknown");
//! // First moment at n1 is -5 (homogeneous start), second is 5·τ.
//! assert!((dec.pieces[0].moments[0][i1] + 5.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// Index-based loops mirror the matrix algebra they implement; iterator
// rewrites would obscure the numerics.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

mod error;
mod moments;
mod stamp;
mod system;

pub use error::MnaError;
pub use moments::{
    decompose_lanes_with, Decomposition, InitialState, MomentEngine, MomentWorkspace, Piece,
    PieceKind, SPARSE_THRESHOLD,
};
pub use stamp::StampProgram;
pub use system::{CapEntry, IndEntry, MnaSystem, SourceEntry};
