//! Synthetic workload generators.
//!
//! The paper's evaluation uses hand-drawn circuits; reproducing its
//! *scaling* claims (§IV: Elmore/moment computation is `O(n)` by tree
//! walk) and stress-testing AWE's numerics (§3.5 frequency scaling on
//! stiff circuits) requires parameterized families of circuits. Every
//! generator is deterministic given its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::element::{NodeId, GROUND};
use crate::netlist::Circuit;
use crate::waveform::Waveform;

/// A generated circuit plus its observable nodes.
#[derive(Clone, Debug)]
pub struct Generated {
    /// The netlist.
    pub circuit: Circuit,
    /// Signal nodes in creation order (excluding the driven input node).
    pub nodes: Vec<NodeId>,
    /// The conventional observation point (usually the far end).
    pub output: NodeId,
}

/// A uniform RC transmission-line segment model ("RC ladder"):
/// `in → R → n1(C) → R → n2(C) → … → R → n_k(C)`.
///
/// # Panics
///
/// Panics if `segments == 0` or any value is non-positive (via the
/// circuit builder).
///
/// # Examples
///
/// ```
/// use awe_circuit::generators::rc_line;
/// use awe_circuit::Waveform;
///
/// let g = rc_line(10, 10.0, 1e-13, Waveform::step(0.0, 5.0));
/// assert_eq!(g.nodes.len(), 10);
/// assert_eq!(g.circuit.num_states(), 10);
/// ```
pub fn rc_line(segments: usize, r: f64, c: f64, input: Waveform) -> Generated {
    assert!(segments > 0, "need at least one segment");
    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    ckt.add_vsource("V1", n_in, GROUND, input).expect("valid");
    let mut prev = n_in;
    let mut nodes = Vec::with_capacity(segments);
    for i in 1..=segments {
        let n = ckt.node(&format!("n{i}"));
        ckt.add_resistor(&format!("R{i}"), prev, n, r)
            .expect("valid");
        ckt.add_capacitor(&format!("C{i}"), n, GROUND, c)
            .expect("valid");
        nodes.push(n);
        prev = n;
    }
    let output = *nodes.last().expect("segments > 0");
    Generated {
        circuit: ckt,
        nodes,
        output,
    }
}

/// A random RC tree with `n` capacitive nodes. Each new node attaches via
/// a resistor to a uniformly random earlier node, so arbitrary branching
/// trees are produced. Resistances and capacitances are log-uniform in
/// `r_range` / `c_range` — wide ranges produce the stiff circuits the
/// paper's §3.5 scaling discussion targets.
///
/// # Panics
///
/// Panics if `n == 0` or a range is inverted/non-positive.
pub fn random_rc_tree(
    n: usize,
    r_range: (f64, f64),
    c_range: (f64, f64),
    seed: u64,
    input: Waveform,
) -> Generated {
    assert!(n > 0, "need at least one node");
    assert!(
        r_range.0 > 0.0 && r_range.1 >= r_range.0,
        "bad resistance range"
    );
    assert!(
        c_range.0 > 0.0 && c_range.1 >= c_range.0,
        "bad capacitance range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let log_uniform = move |range: (f64, f64), rng: &mut StdRng| {
        let (lo, hi) = (range.0.ln(), range.1.ln());
        (lo + (hi - lo) * rng.gen::<f64>()).exp()
    };

    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    ckt.add_vsource("V1", n_in, GROUND, input).expect("valid");
    let mut nodes: Vec<NodeId> = Vec::with_capacity(n);
    for i in 1..=n {
        let attach = if nodes.is_empty() {
            n_in
        } else {
            // Attach to input or any earlier node.
            let k = rng.gen_range(0..=nodes.len());
            if k == 0 {
                n_in
            } else {
                nodes[k - 1]
            }
        };
        let node = ckt.node(&format!("n{i}"));
        let r = log_uniform(r_range, &mut rng);
        let c = log_uniform(c_range, &mut rng);
        ckt.add_resistor(&format!("R{i}"), attach, node, r)
            .expect("valid");
        ckt.add_capacitor(&format!("C{i}"), node, GROUND, c)
            .expect("valid");
        nodes.push(node);
    }
    let output = *nodes.last().expect("n > 0");
    Generated {
        circuit: ckt,
        nodes,
        output,
    }
}

/// An `rows × cols` RC mesh (grid of resistors with a grounded capacitor
/// at every grid node), driven at the `(0, 0)` corner. Meshes contain
/// resistor loops, exercising the Lin–Mead regime of §2.3.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn rc_mesh(rows: usize, cols: usize, r: f64, c: f64, input: Waveform) -> Generated {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    ckt.add_vsource("V1", n_in, GROUND, input).expect("valid");
    let mut grid = vec![vec![GROUND; cols]; rows];
    for (i, row) in grid.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = ckt.node(&format!("m{i}_{j}"));
        }
    }
    ckt.add_resistor("Rdrv", n_in, grid[0][0], r)
        .expect("valid");
    let mut ridx = 0;
    for i in 0..rows {
        for j in 0..cols {
            ckt.add_capacitor(&format!("C{i}_{j}"), grid[i][j], GROUND, c)
                .expect("valid");
            if j + 1 < cols {
                ridx += 1;
                ckt.add_resistor(&format!("Rh{ridx}"), grid[i][j], grid[i][j + 1], r)
                    .expect("valid");
            }
            if i + 1 < rows {
                ridx += 1;
                ckt.add_resistor(&format!("Rv{ridx}"), grid[i][j], grid[i + 1][j], r)
                    .expect("valid");
            }
        }
    }
    let nodes: Vec<NodeId> = grid.iter().flatten().copied().collect();
    let output = grid[rows - 1][cols - 1];
    Generated {
        circuit: ckt,
        nodes,
        output,
    }
}

/// Two parallel RC lines with floating coupling capacitors between
/// corresponding nodes: the aggressor is driven, the victim is held quiet
/// by its own driver resistance to ground rail (a 0 V source). Exercises
/// the floating-capacitance regime of §5.3 at scale.
///
/// Returns the victim's far-end node as `output` (the crosstalk
/// observation point); `nodes` holds aggressor nodes then victim nodes.
///
/// # Panics
///
/// Panics if `segments == 0`.
pub fn coupled_rc_lines(
    segments: usize,
    r: f64,
    c: f64,
    coupling: f64,
    input: Waveform,
) -> Generated {
    assert!(segments > 0, "need at least one segment");
    let mut ckt = Circuit::new();
    let a_in = ckt.node("a_in");
    let v_in = ckt.node("v_in");
    ckt.add_vsource("V1", a_in, GROUND, input).expect("valid");
    ckt.add_vsource("V2", v_in, GROUND, Waveform::dc(0.0))
        .expect("valid");
    let mut a_prev = a_in;
    let mut v_prev = v_in;
    let mut a_nodes = Vec::new();
    let mut v_nodes = Vec::new();
    for i in 1..=segments {
        let a = ckt.node(&format!("a{i}"));
        let v = ckt.node(&format!("v{i}"));
        ckt.add_resistor(&format!("Ra{i}"), a_prev, a, r)
            .expect("valid");
        ckt.add_resistor(&format!("Rv{i}"), v_prev, v, r)
            .expect("valid");
        ckt.add_capacitor(&format!("Ca{i}"), a, GROUND, c)
            .expect("valid");
        ckt.add_capacitor(&format!("Cv{i}"), v, GROUND, c)
            .expect("valid");
        ckt.add_capacitor(&format!("Cc{i}"), a, v, coupling)
            .expect("valid");
        a_nodes.push(a);
        v_nodes.push(v);
        a_prev = a;
        v_prev = v;
    }
    let output = *v_nodes.last().expect("segments > 0");
    let mut nodes = a_nodes;
    nodes.extend(v_nodes);
    Generated {
        circuit: ckt,
        nodes,
        output,
    }
}

/// An RLC ladder: `in → Rs → (L → node(C)) × sections`. Models
/// board-level interconnect (§I) with inductance; underdamped for small
/// `rs`.
///
/// # Panics
///
/// Panics if `sections == 0`.
pub fn rlc_ladder(sections: usize, rs: f64, l: f64, c: f64, input: Waveform) -> Generated {
    assert!(sections > 0, "need at least one section");
    let mut ckt = Circuit::new();
    let n_in = ckt.node("in");
    let nr = ckt.node("nr");
    ckt.add_vsource("V1", n_in, GROUND, input).expect("valid");
    ckt.add_resistor("Rs", n_in, nr, rs).expect("valid");
    let mut prev = nr;
    let mut nodes = Vec::with_capacity(sections);
    for i in 1..=sections {
        let n = ckt.node(&format!("n{i}"));
        ckt.add_inductor(&format!("L{i}"), prev, n, l)
            .expect("valid");
        ckt.add_capacitor(&format!("C{i}"), n, GROUND, c)
            .expect("valid");
        nodes.push(n);
        prev = n;
    }
    let output = *nodes.last().expect("sections > 0");
    Generated {
        circuit: ckt,
        nodes,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpanningTree;
    use crate::topology::analyze;

    fn step() -> Waveform {
        Waveform::step(0.0, 5.0)
    }

    #[test]
    fn rc_line_shape() {
        let g = rc_line(5, 10.0, 1e-12, step());
        assert_eq!(g.circuit.num_states(), 5);
        assert!(analyze(&g.circuit).is_rc_tree());
        assert_eq!(g.output, g.nodes[4]);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn rc_line_zero_panics() {
        let _ = rc_line(0, 1.0, 1.0, step());
    }

    #[test]
    fn random_tree_is_tree_and_deterministic() {
        let g1 = random_rc_tree(25, (1.0, 100.0), (1e-14, 1e-12), 42, step());
        let g2 = random_rc_tree(25, (1.0, 100.0), (1e-14, 1e-12), 42, step());
        assert_eq!(g1.circuit.to_deck(), g2.circuit.to_deck());
        let report = analyze(&g1.circuit);
        assert!(report.is_rc_tree(), "random tree must be an RC tree");
        assert!(SpanningTree::build(&g1.circuit).is_connected());
        // Different seed → different circuit.
        let g3 = random_rc_tree(25, (1.0, 100.0), (1e-14, 1e-12), 43, step());
        assert_ne!(g1.circuit.to_deck(), g3.circuit.to_deck());
    }

    #[test]
    fn random_tree_values_within_range() {
        use crate::element::Element;
        let g = random_rc_tree(50, (2.0, 3.0), (1e-13, 2e-13), 7, step());
        for e in g.circuit.elements() {
            match e {
                Element::Resistor { ohms, .. } => {
                    assert!((2.0..=3.0).contains(ohms));
                }
                Element::Capacitor { farads, .. } => {
                    assert!((1e-13..=2e-13).contains(farads));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn mesh_has_loops() {
        let g = rc_mesh(3, 4, 5.0, 1e-13, step());
        let report = analyze(&g.circuit);
        assert!(report.has_resistor_loops);
        assert!(report.is_rc_mesh());
        assert_eq!(g.circuit.num_states(), 12);
        assert!(SpanningTree::build(&g.circuit).is_connected());
    }

    #[test]
    fn single_cell_mesh_has_no_loops() {
        let g = rc_mesh(1, 1, 5.0, 1e-13, step());
        assert!(!analyze(&g.circuit).has_resistor_loops);
    }

    #[test]
    fn coupled_lines_have_floating_caps() {
        let g = coupled_rc_lines(4, 10.0, 1e-13, 5e-14, step());
        let report = analyze(&g.circuit);
        assert!(report.has_floating_capacitors);
        assert_eq!(g.circuit.num_states(), 12); // 4+4 ground + 4 coupling
        assert_eq!(g.nodes.len(), 8);
    }

    #[test]
    fn rlc_ladder_has_inductors() {
        let g = rlc_ladder(3, 2.0, 1e-9, 1.5e-13, step());
        let report = analyze(&g.circuit);
        assert!(report.has_inductors);
        assert_eq!(g.circuit.num_states(), 6);
    }
}
