//! Factor-once, solve-many at design scale: a batch of structurally
//! identical nets must perform exactly one symbolic LU analysis, with
//! every other net refactoring numerically against the shared pattern —
//! and the sharing must not perturb results or determinism.

use awe_batch::{BatchEngine, BatchOptions, Design, NetSpec, RunMetrics};
use awe_circuit::generators::rc_line;
use awe_circuit::Waveform;

/// 500 RC chains with identical topology (same node/element names, same
/// connectivity) and per-net perturbed values: every structural hash is
/// distinct (all 500 solve), every pattern key is equal (one symbolic
/// analysis serves all).
fn chains(n: usize, segments: usize) -> Design {
    let nets: Vec<NetSpec> = (0..n)
        .map(|i| {
            let g = rc_line(
                segments,
                100.0 * (1.0 + i as f64 * 1e-4),
                1e-12 * (1.0 + i as f64 * 3e-5),
                Waveform::step(0.0, 5.0),
            );
            NetSpec {
                name: format!("chain{i:04}"),
                circuit: g.circuit,
                output: g.output,
            }
        })
        .collect();
    Design::from_nets(format!("chains-{n}"), nets)
}

#[test]
fn five_hundred_identical_structures_analyse_once() {
    // 200 segments ≈ 202 unknowns — comfortably past the sparse-path
    // threshold, so every net factors through the symbolic/numeric split.
    let design = chains(500, 200);
    let engine = BatchEngine::new();
    let run = engine.run(
        &design,
        &BatchOptions {
            threads: 1,
            ..BatchOptions::default()
        },
    );
    assert_eq!(run.solves, 500, "each perturbed net must solve");
    assert_eq!(run.cache_hits, 0);
    assert_eq!(
        run.pattern_hits, 499,
        "exactly one symbolic analysis across the whole batch"
    );
    assert_eq!(engine.pattern_len(), 1, "one shared pattern recorded");
    for r in &run.results {
        assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
        assert!(r.stable, "{}", r.name);
        assert!(r.delay_50.is_some(), "{}", r.name);
    }
    let m = RunMetrics::of(&run);
    assert_eq!(m.pattern_hits, 499);
}

#[test]
fn pattern_sharing_does_not_change_results() {
    // The same nets solved in isolation (fresh engine per net: no donor,
    // no seeding) must agree exactly with the shared-pattern batch: the
    // refactorization replays the donor's pivot order, which for an
    // identical sparsity structure is a valid elimination order, and the
    // solve is deterministic either way.
    let design = chains(24, 200);
    let engine = BatchEngine::new();
    let batched = engine.run(
        &design,
        &BatchOptions {
            threads: 1,
            ..BatchOptions::default()
        },
    );
    assert_eq!(batched.pattern_hits, 23);
    for (spec, r) in design.nets().iter().zip(&batched.results) {
        let solo = BatchEngine::new().run(
            &Design::from_nets("solo", vec![spec.clone()]),
            &BatchOptions {
                threads: 1,
                ..BatchOptions::default()
            },
        );
        let s = &solo.results[0];
        assert_eq!(s.order, r.order, "{}", r.name);
        assert_eq!(s.delay_50, r.delay_50, "{}", r.name);
        assert_eq!(s.final_value, r.final_value, "{}", r.name);
        assert_eq!(s.poles, r.poles, "{}", r.name);
    }
}

#[test]
fn pattern_cache_survives_eco_rerun() {
    // ECO flow: re-running after editing one net's *values* re-solves
    // only that net, and the re-solve refactors against the pattern
    // recorded by the first run — no new symbolic analysis.
    let mut design = chains(8, 200);
    let engine = BatchEngine::new();
    let first = engine.run(
        &design,
        &BatchOptions {
            threads: 1,
            ..BatchOptions::default()
        },
    );
    assert_eq!(first.pattern_hits, 7);

    let edited = rc_line(200, 333.0, 2e-12, Waveform::step(0.0, 5.0));
    assert!(design.replace_net("chain0003", edited.circuit, edited.output));
    let rerun = engine.run(
        &design,
        &BatchOptions {
            threads: 1,
            ..BatchOptions::default()
        },
    );
    assert_eq!(rerun.solves, 1);
    assert_eq!(rerun.cache_hits, 7);
    assert_eq!(
        rerun.pattern_hits, 1,
        "the edited net must reuse the stored pattern"
    );
    assert_eq!(engine.pattern_len(), 1);
}
