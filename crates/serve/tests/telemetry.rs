//! Service-telemetry behavior: request-id minting and propagation into
//! obs events, the flight recorder (on-demand and anomaly-triggered),
//! and both renderings of the continuous telemetry (exposition text and
//! the stats dashboard).
//!
//! A recording is process-global, so every test that records serializes
//! on [`record_lock`].

use std::sync::{Mutex, PoisonError};

use awe_serve::json::parse;
use awe_serve::server::FlightOptions;
use awe_serve::{handle_line, Json, ServeOptions, ServeState};

static RECORD_LOCK: Mutex<()> = Mutex::new(());

fn record_lock() -> std::sync::MutexGuard<'static, ()> {
    RECORD_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn send(st: &ServeState, line: &str) -> Json {
    let reply = handle_line(st, line);
    parse(&reply).unwrap_or_else(|e| panic!("invalid reply JSON ({e}): {reply}"))
}

fn rid(reply: &Json) -> u64 {
    reply
        .get("req")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("reply missing req: {reply}"))
}

/// A per-test scratch directory under the target-adjacent temp dir.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("awe-serve-telemetry-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const LOAD: &str =
    r#"{"id":1,"verb":"load_design","session":"s","chains":{"nets":4,"stages":8,"seed":5}}"#;
const ECO: &str = r#"{"id":2,"verb":"eco","session":"s","ops":[{"op":"resize","net":"net0001","element":"R3","value":180}]}"#;
const ANALYZE: &str = r#"{"id":3,"verb":"analyze","session":"s"}"#;

#[test]
fn every_reply_carries_a_fresh_request_id() {
    let st = ServeState::new(ServeOptions::default());
    // Well-formed, error, and unparseable lines all get distinct,
    // strictly increasing ids: a log line is always attributable.
    let a = rid(&send(&st, LOAD));
    let b = rid(&send(&st, r#"{"verb":"analyze","session":"nope"}"#));
    let c = rid(&send(&st, "not json at all"));
    let d = rid(&send(&st, ANALYZE));
    assert!(
        a < b && b < c && c < d,
        "ids not increasing: {a} {b} {c} {d}"
    );
}

#[test]
fn request_ids_propagate_to_every_recorded_event() {
    let _guard = record_lock();
    let rec = awesim_recording();
    let st = ServeState::new(ServeOptions::default());
    let minted: Vec<u64> = [LOAD, ECO, ANALYZE]
        .iter()
        .map(|line| {
            let reply = send(&st, line);
            assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
            rid(&reply)
        })
        .collect();
    let analyze_rid = *minted.last().unwrap();
    let profile = rec.finish();
    let mut total = 0usize;
    let mut analyze_events = 0usize;
    for lane in &profile.lanes {
        for e in &lane.events {
            total += 1;
            assert!(
                minted.contains(&e.req),
                "event `{}` in lane `{}` has req {} outside the minted set {minted:?}",
                e.name,
                lane.label,
                e.req
            );
            if e.req == analyze_rid {
                analyze_events += 1;
            }
        }
    }
    assert!(total > 0, "the requests recorded nothing");
    // The analyze request reaches the batch engine and its solver spans
    // — on whatever thread the pool placed them — all tagged with the
    // minting request's id.
    assert!(
        analyze_events >= 2,
        "analyze request tagged only {analyze_events} events"
    );
}

#[test]
fn dump_trace_writes_a_valid_tagged_chrome_trace() {
    let _guard = record_lock();
    let rec = awesim_recording();
    let st = ServeState::new(ServeOptions::default());
    send(&st, LOAD);
    let path = scratch("dump").join("on-demand.json");
    let reply = send(
        &st,
        &format!(
            r#"{{"id":9,"verb":"dump_trace","session":"s","path":"{}"}}"#,
            path.display()
        ),
    );
    drop(rec);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    assert!(reply.get("events").and_then(Json::as_u64).unwrap() > 0);
    let text = std::fs::read_to_string(&path).expect("dump written");
    // Chrome's "JSON Array Format": the whole document is the event list.
    let trace = parse(&text).expect("dump is valid JSON");
    let events = trace.as_arr().expect("chrome trace is an event array");
    let trigger = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("flight_trigger"))
        .expect("trigger instant present");
    let args = trigger.get("args").expect("trigger args");
    assert_eq!(args.get("reason").and_then(Json::as_str), Some("on_demand"));
    assert_eq!(args.get("req"), Some(&Json::from(rid(&reply))));
    assert_eq!(args.get("session").and_then(Json::as_str), Some("s"));
}

#[test]
fn dump_trace_without_a_recording_is_a_typed_error() {
    let _guard = record_lock(); // must observe *no* recording
    let st = ServeState::new(ServeOptions::default());
    let reply = send(&st, r#"{"id":1,"verb":"dump_trace"}"#);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request")
    );
}

#[test]
fn error_responses_trigger_an_automatic_flight_dump() {
    let _guard = record_lock();
    let rec = awesim_recording();
    let dir = scratch("auto");
    for f in std::fs::read_dir(&dir).expect("scratch") {
        let _ = std::fs::remove_file(f.expect("entry").path());
    }
    let st = ServeState::new(ServeOptions {
        flight: FlightOptions {
            enabled: true,
            dir: dir.clone(),
            latency_threshold_us: None,
        },
        ..ServeOptions::default()
    });
    let reply = send(&st, r#"{"id":1,"verb":"analyze","session":"ghost"}"#);
    drop(rec);
    let bad_rid = rid(&reply);
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("scratch")
        .map(|f| f.expect("entry").path())
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one dump: {dumps:?}");
    let name = dumps[0].file_name().unwrap().to_string_lossy().into_owned();
    assert_eq!(name, format!("flight-req{bad_rid:06}-error_response.json"));
    let trace = parse(&std::fs::read_to_string(&dumps[0]).expect("readable")).expect("valid JSON");
    assert!(trace.as_arr().is_some_and(|events| !events.is_empty()));
    // The daemon-wide metrics reply reports the dump.
    let metrics = send(&st, r#"{"verb":"metrics"}"#);
    assert_eq!(metrics.get("flight_dumps").and_then(Json::as_u64), Some(1));
    assert!(metrics
        .get("last_flight_dump")
        .and_then(Json::as_str)
        .is_some_and(|p| p.ends_with(&name)));
}

#[test]
fn disabled_flight_recorder_never_writes() {
    let _guard = record_lock();
    let rec = awesim_recording();
    let dir = scratch("disabled");
    let before = std::fs::read_dir(&dir).expect("scratch").count();
    // Default options: flight disabled — in-process embedders must not
    // grow files as a side effect of error responses.
    let st = ServeState::new(ServeOptions::default());
    send(&st, "garbage");
    drop(rec);
    assert_eq!(std::fs::read_dir(&dir).expect("scratch").count(), before);
}

#[test]
fn exposition_has_the_advertised_families() {
    let st = ServeState::new(ServeOptions::default());
    send(&st, LOAD);
    send(&st, ECO);
    send(&st, ANALYZE);
    send(&st, "garbage");
    let text = st.prometheus_text();
    for family in [
        "# TYPE awesim_uptime_seconds gauge",
        "# TYPE awesim_requests_total counter",
        "awesim_request_errors_total 1",
        "awesim_sessions 1",
        "# TYPE awesim_obs_ring_dropped_total counter",
        "# TYPE awesim_anomalies_total counter",
        "awesim_requests_verb_total{verb=\"load_design\"} 1",
        "awesim_requests_verb_total{verb=\"other\"} 1",
        "awesim_request_latency_us{verb=\"analyze\",window=\"60s\",quantile=\"0.99\"}",
        "awesim_request_latency_us_count{verb=\"eco\",window=\"900s\"} 1",
        "awesim_eco_class_latency_us{class=\"value\",window=\"60s\",quantile=\"0.5\"}",
    ] {
        assert!(text.contains(family), "missing `{family}` in:\n{text}");
    }
    // Prometheus text format: every non-comment line is `name{labels} value`
    // with a parseable float value.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (_, value) = line.rsplit_once(' ').expect("sample has a value");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad sample value: {line}"));
    }
}

#[test]
fn stats_dashboard_renders_the_metrics_reply() {
    let st = ServeState::new(ServeOptions::default());
    send(&st, LOAD);
    send(&st, ANALYZE);
    let reply = send(&st, r#"{"verb":"metrics"}"#);
    let dash = awe_serve::render_stats(&reply);
    assert!(dash.contains("awesim daemon"), "{dash}");
    assert!(dash.contains("1 sessions"), "{dash}");
    assert!(dash.contains("load_design"), "{dash}");
    assert!(dash.contains("analyze"), "{dash}");
    // Degrades to `-` on a reply missing fields instead of panicking.
    let sparse = awe_serve::render_stats(&Json::obj(vec![("ok", Json::Bool(true))]));
    assert!(sparse.contains('-'), "{sparse}");
}

/// Starts the process-global recording, panicking with a useful message
/// if another test leaked one.
fn awesim_recording() -> awe_obs::Recording {
    awe_obs::Recording::start().expect("no other recording active")
}
